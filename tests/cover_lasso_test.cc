// The cover-edge lasso path (ISSUE 4): repeated reachability runs
// DIRECTLY on the antichain-pruned coverability graph, traversing the
// cover-edges recorded at the two prune points, instead of rebuilding
// an unpruned graph. Covered here:
//   - a loop that exists in the pruned graph only through cover-edges
//     (every pruned cycle does — real pruned edges are id-increasing);
//   - soundness: cover-jump slack on exact counters must NOT fabricate
//     a lasso the real system does not have (the exact-dimension
//     feasibility floors of vass/repeated.cc);
//   - retire (label-less) cover-edges of deactivated nodes;
//   - witness replay: stem + loop label sequences stay executable;
//   - the old full-graph fallback as a TEST ORACLE: per root memo
//     entry, an unpruned graph built from the same TaskVass must agree
//     with the pruned graph's lasso verdict, while the engine itself
//     reports full_graph_builds == 0.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>

#include "builders.h"
#include "core/rt_relation.h"
#include "core/verifier.h"
#include "spec/parser.h"
#include "vass/karp_miller.h"
#include "vass/repeated.h"
#include "workloads.h"

namespace has {
namespace {

/// An explicit VASS that remembers its actions so witness label
/// sequences can be replayed semantically.
struct ReplayableVass {
  explicit ReplayableVass(int num_states) : vass(num_states) {}
  int64_t Add(int from, Delta delta, int to) {
    int64_t label = vass.AddAction(from, delta, to);
    actions[label] = {from, delta, to};
    return label;
  }
  struct Action {
    int from;
    Delta delta;
    int to;
  };
  ExplicitVass vass;
  std::map<int64_t, Action> actions;
};

/// Replays stem+loop from the all-zero root marking, treating ω-pumped
/// coordinates as "large" (the stem of a Karp–Miller witness may elide
/// pumping repetitions, so a coordinate that went ω is creditable with
/// an arbitrarily high value). Checks state continuity, per-step
/// enabledness and, for the loop, a non-negative net effect on every
/// dimension — together these make the lasso executable forever.
void ExpectWitnessReplays(const ReplayableVass& rv, const KarpMiller& g,
                          const LassoWitness& w) {
  constexpr int64_t kPumped = 1'000'000'000;
  std::vector<int64_t> m;
  int state = 0;
  auto step = [&](int64_t label, const char* phase) {
    auto it = rv.actions.find(label);
    ASSERT_NE(it, rv.actions.end()) << phase << " label " << label;
    EXPECT_EQ(it->second.from, state) << phase << " label " << label;
    for (const auto& [d, c] : it->second.delta) {
      int64_t v = marking::Get(m, d) + c;
      ASSERT_GE(v, 0) << phase << " label " << label << " dim " << d;
      marking::Set(&m, d, v);
    }
    state = it->second.to;
  };
  for (int64_t label : w.stem_labels) step(label, "stem");
  // Credit the pumping the stem elided: the witness node's ω
  // coordinates are reachable at any height.
  for (size_t d = 0; d < g.node_marking(w.node).size(); ++d) {
    if (g.node_marking(w.node)[d] == kOmega) {
      marking::Set(&m, static_cast<int>(d), kPumped);
    }
  }
  EXPECT_EQ(state, g.node_state(w.node));
  std::vector<int64_t> before_loop = m;
  int state_before_loop = state;
  for (int64_t label : w.loop_labels) step(label, "loop");
  EXPECT_EQ(state, state_before_loop);
  size_t dims = std::max(m.size(), before_loop.size());
  for (size_t d = 0; d < dims; ++d) {
    EXPECT_GE(marking::Get(m, static_cast<int>(d)),
              marking::Get(before_loop, static_cast<int>(d)))
        << "loop drains dim " << d;
  }
}

/// Lasso-existence agreement between the pruned graph (cover-edge
/// criterion) and a full graph of the same system (classical
/// criterion), plus witness replay and shard determinism of the
/// pruned graph's cover structure.
void ExpectPrunedLassoMatchesFull(
    const std::function<ReplayableVass()>& make,
    const std::function<bool(int)>& accepting, const std::string& what) {
  ReplayableVass full_sys = make();
  KarpMiller full(&full_sys.vass, {});
  full.Build({0});
  std::optional<LassoWitness> full_lasso = FindAcceptingLasso(full, accepting);

  ReplayableVass pruned_sys = make();
  KarpMillerOptions options;
  options.prune_coverability = true;
  KarpMiller pruned(&pruned_sys.vass, options);
  pruned.Build({0});
  std::optional<LassoWitness> pruned_lasso =
      FindAcceptingLasso(pruned, accepting);

  EXPECT_EQ(full_lasso.has_value(), pruned_lasso.has_value()) << what;
  if (full_lasso.has_value()) {
    ExpectWitnessReplays(full_sys, full, *full_lasso);
  }
  if (pruned_lasso.has_value()) {
    ExpectWitnessReplays(pruned_sys, pruned, *pruned_lasso);
  }
  // The pruned graph's lasso answer is shard-independent because the
  // graph itself is (cover-edges included).
  for (int shards : {2, 4}) {
    ReplayableVass sys = make();
    KarpMillerOptions par_options = options;
    par_options.num_shards = shards;
    KarpMiller par(&sys.vass, par_options);
    par.Build({0});
    ASSERT_EQ(par.num_nodes(), pruned.num_nodes()) << what;
    EXPECT_EQ(par.cover_edges(), pruned.cover_edges()) << what;
    std::optional<LassoWitness> par_lasso = FindAcceptingLasso(par, accepting);
    ASSERT_EQ(par_lasso.has_value(), pruned_lasso.has_value()) << what;
    if (par_lasso.has_value()) {
      EXPECT_EQ(par_lasso->node, pruned_lasso->node) << what;
      EXPECT_EQ(par_lasso->stem_labels, pruned_lasso->stem_labels) << what;
      EXPECT_EQ(par_lasso->loop_labels, pruned_lasso->loop_labels) << what;
    }
  }
}

TEST(CoverLassoTest, LoopExistsOnlyThroughCoverEdges) {
  // A --t1(+2)--> B, A --t2(+1)--> B, B --t3(-2)--> A. The pruned
  // graph folds (B,1) into (B,2) and the return to (A,0) into the
  // root, so its ONLY cycle runs through cover-edges; the real system
  // loops forever via t1/t3.
  auto make = []() {
    ReplayableVass rv(2);
    rv.Add(0, {{0, +2}}, 1);
    rv.Add(0, {{0, +1}}, 1);
    rv.Add(1, {{0, -2}}, 0);
    return rv;
  };
  ExpectPrunedLassoMatchesFull(make, [](int s) { return s == 1; },
                               "drop-cover loop");

  // Structure check: the pruned graph has no real cycle at all.
  ReplayableVass rv = make();
  KarpMillerOptions options;
  options.prune_coverability = true;
  KarpMiller g(&rv.vass, options);
  g.Build({0});
  size_t cover = 0;
  for (int n = 0; n < g.num_nodes(); ++n) {
    for (const KarpMiller::Edge& e : g.edges(n)) {
      if (e.cover) ++cover;
      else EXPECT_GT(e.target, n) << "real pruned edges are forward-only";
    }
  }
  EXPECT_GE(cover, 2u);
  auto lasso = FindAcceptingLasso(g, [](int s) { return s == 1; });
  ASSERT_TRUE(lasso.has_value());
  ExpectWitnessReplays(rv, g, *lasso);
}

TEST(CoverLassoTest, CoverSlackDoesNotFabricateLasso) {
  // S --s1(+2)--> B, S --s2--> A, A --a1(+1)--> B, B --b1(-2)--> A.
  // Every run of the real system terminates, and the full graph is
  // acyclic. The pruned graph folds A's successor (B,1) into (B,2)
  // and B's return (A,0) into the existing (A,0): a cover-edge CYCLE
  // with net -1 on an exact counter. The exact-dimension feasibility
  // floors must refuse it — a naive "any cycle" check would report a
  // bogus lasso here.
  auto make = []() {
    ReplayableVass rv(3);
    rv.Add(0, {{0, +2}}, 2);
    rv.Add(0, {}, 1);
    rv.Add(1, {{0, +1}}, 2);
    rv.Add(2, {{0, -2}}, 1);
    return rv;
  };
  for (int accept_state : {1, 2}) {
    ExpectPrunedLassoMatchesFull(
        make, [accept_state](int s) { return s == accept_state; },
        "slack soundness accept=" + std::to_string(accept_state));
  }
  // And explicitly: the pruned graph DOES contain a graph-level cycle
  // (so the agreement above is the criterion's doing, not luck).
  ReplayableVass rv = make();
  KarpMillerOptions options;
  options.prune_coverability = true;
  KarpMiller g(&rv.vass, options);
  g.Build({0});
  EXPECT_GE(g.cover_edges(), 2u);
  EXPECT_FALSE(
      FindAcceptingLasso(g, [](int) { return true; }).has_value());
}

TEST(CoverLassoTest, RetiredNodeKeepsLabelLessCoverEdge) {
  // R --r1--> C and R --r2(+1)--> C in the same round: (C,0) is
  // interned first, then (C,1) strictly covers and DEACTIVATES it, so
  // (C,0) carries a label-less cover-edge to (C,1). The real lasso
  // (r2 then c1, net 0) must be found; the walk through the retired
  // node (r1 then c1, net -1 from an empty counter) must not.
  auto make = []() {
    ReplayableVass rv(2);
    rv.Add(0, {}, 1);
    rv.Add(0, {{0, +1}}, 1);
    rv.Add(1, {{0, -1}}, 0);
    return rv;
  };
  ExpectPrunedLassoMatchesFull(make, [](int s) { return s == 1; },
                               "retired-node epsilon");

  ReplayableVass rv = make();
  KarpMillerOptions options;
  options.prune_coverability = true;
  KarpMiller g(&rv.vass, options);
  g.Build({0});
  EXPECT_EQ(g.deactivated_nodes(), 1u);
  bool found_epsilon = false;
  for (int n = 0; n < g.num_nodes(); ++n) {
    if (!g.node_deactivated(n)) continue;
    ASSERT_EQ(g.edges(n).size(), 1u);
    const KarpMiller::Edge& e = g.edges(n)[0];
    EXPECT_TRUE(e.cover);
    EXPECT_EQ(e.label, -1);
    EXPECT_TRUE(e.delta.empty());
    // The coverer strictly dominates the retired node.
    EXPECT_EQ(g.node_state(e.target), g.node_state(n));
    EXPECT_TRUE(marking::LessEq(g.node_marking(n), g.node_marking(e.target)));
    found_epsilon = true;
  }
  EXPECT_TRUE(found_epsilon);
}

TEST(CoverLassoTest, PumpFamilySweepMatchesFull) {
  // Pump/spend hubs with ω-acceleration and subsumption-heavy chains:
  // lasso existence must agree between pruned and full graphs for
  // every state taken as the accepting one.
  for (int width : {2, 3}) {
    auto make = [width]() {
      ReplayableVass rv(2 * width + 2);
      for (int i = 0; i < width; ++i) {
        rv.Add(0, {{i, +1}}, 1 + i);
        rv.Add(1 + i, {{i, +1}}, 1 + i);
        rv.Add(1 + i, {{i, -1}}, 1 + width + i);
        rv.Add(1 + width + i, {}, 0);
      }
      Delta all_spend;
      for (int i = 0; i < width; ++i) all_spend.emplace_back(i, -1);
      rv.Add(0, all_spend, 2 * width + 1);
      return rv;
    };
    for (int accept = 0; accept < 2 * width + 2; ++accept) {
      ExpectPrunedLassoMatchesFull(
          make, [accept](int s) { return s == accept; },
          "pump width=" + std::to_string(width) + " accept=" +
              std::to_string(accept));
    }
  }
}

TEST(CoverLassoTest, OmegaDipBeyondBoundDoesNotFabricateLasso) {
  // 2 --(+1)--> 2 (pump, d0 goes ω), 2 --()--> 0, 0 --(-3)--> 1,
  // 1 --(+2)--> 0, accepting state 0. Every lap of the only cycle
  // nets -1 on d0, so state 0 is NOT repeatedly reachable. With
  // bottom-SATURATION of ω-dimension effects the first deepening
  // round (clamp 2) would store the -3 dip as -2, recover to 0 with
  // the +2, and accept a bogus loop; dips beyond the clamp must kill
  // the path instead.
  auto make = []() {
    ReplayableVass rv(3);
    rv.Add(2, {{0, +1}}, 2);
    rv.Add(2, {}, 0);
    rv.Add(0, {{0, -3}}, 1);
    rv.Add(1, {{0, +2}}, 0);
    return rv;
  };
  for (bool prune : {false, true}) {
    ReplayableVass rv = make();
    KarpMillerOptions options;
    options.prune_coverability = prune;
    KarpMiller g(&rv.vass, options);
    g.Build({2});
    EXPECT_FALSE(
        FindAcceptingLasso(g, [](int s) { return s == 0; }).has_value())
        << "prune=" << prune;
    // The sibling system whose loop nets exactly 0 IS a lasso — the
    // kill must not over-prune legitimate deep-recovery loops at the
    // configured bound.
    ReplayableVass ok(3);
    ok.Add(2, {{0, +1}}, 2);
    ok.Add(2, {}, 0);
    ok.Add(0, {{0, -3}}, 1);
    ok.Add(1, {{0, +3}}, 0);
    KarpMiller g2(&ok.vass, options);
    g2.Build({2});
    EXPECT_TRUE(
        FindAcceptingLasso(g2, [](int s) { return s == 0; }).has_value())
        << "prune=" << prune;
  }
}

TEST(CoverLassoTest, ExhaustedStepBudgetIsReportedNotSilentlyHolds) {
  // With an absurd step budget the cover-SCC search cannot prove
  // anything: FindAcceptingLasso must say "budget exhausted" instead
  // of letting the caller read nullopt as "no lasso exists". The same
  // system with the default budget finds its lasso and reports a
  // clean (non-exhausted) search.
  ReplayableVass rv(2);
  rv.Add(0, {{0, +2}}, 1);
  rv.Add(0, {{0, +1}}, 1);
  rv.Add(1, {{0, -2}}, 0);
  KarpMillerOptions options;
  options.prune_coverability = true;
  KarpMiller g(&rv.vass, options);
  g.Build({0});
  const auto accepting = [](int s) { return s == 1; };
  RepeatedReachabilityOptions starved;
  starved.max_steps = 1;
  bool exhausted = false;
  EXPECT_FALSE(
      FindAcceptingLasso(g, accepting, starved, &exhausted).has_value());
  EXPECT_TRUE(exhausted);
  exhausted = true;
  EXPECT_TRUE(FindAcceptingLasso(g, accepting, {}, &exhausted).has_value());
  EXPECT_FALSE(exhausted);
}

TEST(CoverLassoTest, StarvedVerifierDegradesToInconclusive) {
  // End-to-end: a property violated only through a lasso, verified
  // with a starved lasso step budget, must come back INCONCLUSIVE —
  // never HOLDS.
  bench::Workload w = bench::MakeWorkload(SchemaClass::kAcyclic, /*size=*/3,
                                          /*depth=*/2, /*with_sets=*/true,
                                          /*with_arith=*/false);
  VerifyResult reference = Verify(w.system, w.property);
  ASSERT_EQ(reference.verdict, Verdict::kViolated);
  VerifierOptions starved;
  starved.lasso_max_steps = 1;
  VerifyResult result = Verify(w.system, w.property, starved);
  // The one unacceptable outcome is a silent HOLDS: either the lasso
  // is still found within the tiny budget (VIOLATED), or the cut
  // search must surface as truncation (INCONCLUSIVE).
  EXPECT_NE(result.verdict, Verdict::kHolds);
  if (result.verdict != Verdict::kViolated) {
    EXPECT_EQ(result.verdict, Verdict::kInconclusive);
    EXPECT_TRUE(result.stats.truncated);
  }
}

// ---------------------------------------------------------------------
// Engine-level: the retired full-graph fallback as a test oracle.

std::string LoadSpec(const std::string& name) {
  for (const std::string& prefix :
       {std::string("examples/specs/"), std::string("../examples/specs/"),
        std::string("../../examples/specs/")}) {
    std::ifstream in(prefix + name);
    if (in) {
      std::ostringstream out;
      out << in.rdbuf();
      return out.str();
    }
  }
  return "";
}

/// For every root memo entry of a pruned engine run, rebuild the full
/// (unpruned) graph from the SAME TaskVass — exactly what the old
/// RtEngine fallback did — and demand lasso-existence agreement with
/// the entry's cover-edge lasso, plus valid (replayable) record ids in
/// the recorded witness.
void ExpectEntriesMatchFallbackOracle(const ArtifactSystem& system,
                                      const HltlProperty& property,
                                      const std::string& what,
                                      VerifierOptions options = {}) {
  options.prune_coverability = true;
  HltlProperty negated = property.Negated();
  std::optional<Hcd> hcd;
  if (SystemUsesArithmetic(system, property)) {
    hcd = BuildSystemHcd(system, negated);
  }
  RtEngine engine(&system, &negated, options,
                  hcd.has_value() ? &*hcd : nullptr);
  engine.CheckRoot();
  EXPECT_EQ(engine.stats().full_graph_builds, 0u) << what;
  EXPECT_GT(engine.stats().cover_edges, 0u) << what;

  const Task& root_task = system.task(system.root());
  PartialIsoType empty_input(&system.schema(), &root_task.vars(),
                             engine.context(system.root()).nav_depth());
  Cell empty_cell;
  int compared = 0;
  for (Assignment beta = 0; beta < 8; ++beta) {
    RtQueryKey key = engine.EntryKey(system.root(), empty_input, empty_cell,
                                     beta);
    const RtEngine::Entry* entry = engine.FindEntry(key);
    if (entry == nullptr) continue;
    const auto accepting = [&](int state) {
      return entry->vass->IsBuchiAccepting(state);
    };
    KarpMillerOptions full_options;
    full_options.prune_coverability = false;
    KarpMiller full(entry->vass.get(), full_options);
    full.Build(entry->vass->InitialStates());
    std::optional<LassoWitness> oracle = FindAcceptingLasso(full, accepting);
    std::optional<LassoWitness> cover =
        FindAcceptingLasso(*entry->graph, accepting);
    EXPECT_EQ(oracle.has_value(), cover.has_value())
        << what << " beta=" << beta;
    if (cover.has_value()) {
      // Replayable for counterexample.cc: every label resolves to a
      // transition record (the cover path never leaks label-less hops
      // into the witness).
      for (int64_t label : cover->stem_labels) {
        ASSERT_GE(label, 0) << what;
        (void)entry->vass->record(label);
      }
      ASSERT_FALSE(cover->loop_labels.empty()) << what;
      for (int64_t label : cover->loop_labels) {
        ASSERT_GE(label, 0) << what;
        (void)entry->vass->record(label);
      }
    }
    ++compared;
  }
  EXPECT_GT(compared, 0) << what;
}

TEST(CoverLassoOracleTest, Table1Workload) {
  bench::Workload w = bench::MakeWorkload(SchemaClass::kAcyclic, /*size=*/3,
                                          /*depth=*/2, /*with_sets=*/true,
                                          /*with_arith=*/false);
  ExpectEntriesMatchFallbackOracle(w.system, w.property, w.name);
}

TEST(CoverLassoOracleTest, MultiSetWorkload) {
  // The family whose node count the old fallback dominated.
  bench::Workload w = bench::MakeMultiSet(/*size=*/2, /*depth=*/2,
                                          /*set_width=*/2);
  ExpectEntriesMatchFallbackOracle(w.system, w.property, w.name);
}

TEST(CoverLassoOracleTest, AdversarialCyclicWorkload) {
  bench::Workload w = bench::MakeAdversarialCyclic(/*size=*/3, /*depth=*/2);
  ExpectEntriesMatchFallbackOracle(w.system, w.property, w.name);
}

TEST(CoverLassoOracleTest, TravelMiniSpecs) {
  std::string text = LoadSpec("travel_mini.has");
  ASSERT_FALSE(text.empty()) << "travel_mini.has not found";
  auto parsed = ParseSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  VerifierOptions base;
  base.max_nav_depth = 2;
  for (const char* prop : {"discount_policy", "cancel_closes_cancelled"}) {
    const HltlProperty* p = parsed->FindProperty(prop);
    ASSERT_NE(p, nullptr) << prop;
    ExpectEntriesMatchFallbackOracle(parsed->system, *p,
                                     std::string("travel_mini/") + prop,
                                     base);
  }
}

TEST(CoverLassoOracleTest, FullGraphBuildsStayZeroAcrossShardCounts) {
  // End-to-end: with pruning (now the default) the verifier never
  // rebuilds an unpruned graph, at any shard count, and verdicts match
  // the pruning-off reference.
  bench::Workload w = bench::MakeMultiSet(/*size=*/2, /*depth=*/2,
                                          /*set_width=*/2);
  VerifierOptions reference_options;
  reference_options.prune_coverability = false;
  VerifyResult reference = Verify(w.system, w.property, reference_options);
  for (int shards : {1, 2, 4}) {
    VerifierOptions options;
    options.num_shards = shards;
    VerifyResult result = Verify(w.system, w.property, options);
    EXPECT_EQ(result.verdict, reference.verdict) << shards;
    EXPECT_EQ(result.stats.full_graph_builds, 0u) << shards;
    EXPECT_GT(result.stats.cover_edges, 0u) << shards;
  }
}

}  // namespace
}  // namespace has
