#include <gtest/gtest.h>

#include "builders.h"
#include "model/validate.h"

namespace has {
namespace {

TEST(ModelTest, FlatSystemValidates) {
  ArtifactSystem system = testing::FlatSystem(true);
  EXPECT_TRUE(ValidateSystem(system).ok());
  EXPECT_EQ(system.num_tasks(), 1);
  EXPECT_EQ(system.Depth(), 1);
}

TEST(ModelTest, ParentChildValidates) {
  ArtifactSystem system = testing::ParentChildSystem();
  EXPECT_TRUE(ValidateSystem(system).ok());
  EXPECT_EQ(system.Depth(), 2);
  EXPECT_EQ(system.PreOrder(), (std::vector<TaskId>{0, 1}));
  EXPECT_EQ(system.PostOrder(), (std::vector<TaskId>{1, 0}));
}

TEST(ModelTest, ObservableServices) {
  ArtifactSystem system = testing::ParentChildSystem();
  std::vector<ServiceRef> obs = system.ObservableServices(0);
  // 1 internal + open/close self + open/close child.
  EXPECT_EQ(obs.size(), 5u);
  EXPECT_EQ(system.ServiceName(ServiceRef::Internal(0, 0)), "Parent.pick");
  EXPECT_EQ(system.ServiceName(ServiceRef::Opening(1)), "open(Child)");
}

TEST(ModelTest, SizeMeasurePositive) {
  EXPECT_GT(testing::ParentChildSystem().SizeMeasure(), 5);
}

TEST(ValidateTest, NumericSetVariableRejected) {
  ArtifactSystem system = testing::FlatSystem(false);
  Task& t = system.task(0);
  int n = t.vars().AddVar("n", VarSort::kNumeric);
  t.DeclareSet({n});
  EXPECT_FALSE(ValidateSystem(system).ok());
}

TEST(ValidateTest, SetUpdateWithoutSetRejected) {
  ArtifactSystem system = testing::FlatSystem(false);
  InternalService bad;
  bad.name = "bad";
  bad.pre = Condition::True();
  bad.post = Condition::True();
  bad.MarkInsert();
  system.task(0).AddInternalService(std::move(bad));
  EXPECT_FALSE(ValidateSystem(system).ok());
}

TEST(ValidateTest, ReturnTargetMustNotBeParentInput) {
  // Restriction 3: a parent variable cannot be both parent input and a
  // child return target.
  ArtifactSystem system;
  system.schema().AddRelation("R");
  TaskId root = system.AddTask("Root", kNoTask);
  int rx = system.task(root).vars().AddVar("rx", VarSort::kId);
  system.task(root).AddInput(rx, -1);  // root input
  TaskId child = system.AddTask("Child", root);
  int cx = system.task(child).vars().AddVar("cx", VarSort::kId);
  system.task(child).AddOutput(rx, cx);  // returns into the root input
  EXPECT_FALSE(ValidateSystem(system).ok());
}

TEST(ValidateTest, SortMismatchInMappingRejected) {
  ArtifactSystem system;
  system.schema().AddRelation("R");
  TaskId root = system.AddTask("Root", kNoTask);
  int rx = system.task(root).vars().AddVar("rx", VarSort::kId);
  TaskId child = system.AddTask("Child", root);
  int cn = system.task(child).vars().AddVar("cn", VarSort::kNumeric);
  system.task(child).AddInput(cn, rx);  // numeric <- id
  EXPECT_FALSE(ValidateSystem(system).ok());
}

TEST(ValidateTest, RootMustNotReturn) {
  ArtifactSystem system = testing::FlatSystem(false);
  system.task(0).AddOutput(0, 0);
  EXPECT_FALSE(ValidateSystem(system).ok());
}

TEST(ValidateTest, GlobalPreOverNonInputRejected) {
  ArtifactSystem system = testing::FlatSystem(false);
  // Π mentions x which is not declared as a root input.
  system.SetGlobalPre(Condition::IsNull(0));
  EXPECT_FALSE(ValidateSystem(system).ok());
}

}  // namespace
}  // namespace has
