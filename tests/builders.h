// Shared miniature systems for tests.
#ifndef HAS_TESTS_BUILDERS_H_
#define HAS_TESTS_BUILDERS_H_

#include "hltl/hltl.h"
#include "model/artifact_system.h"

namespace has {
namespace testing {

/// One root task with two ID vars over a single relation R(id, fk->R2)
/// and a toggle service; optionally an artifact relation over {x}.
///   service pick:  pre x == null, post R(x, y)
///   service drop:  pre x != null, post x == null && y == null
inline ArtifactSystem FlatSystem(bool with_set) {
  ArtifactSystem system;
  RelationId r2 = system.schema().AddRelation("R2");
  RelationId r = system.schema().AddRelation("R");
  (void)r2;
  system.schema().relation(r).AddForeignKey("fk", r2);
  TaskId root = system.AddTask("Main", kNoTask);
  Task& t = system.task(root);
  int x = t.vars().AddVar("x", VarSort::kId);
  int y = t.vars().AddVar("y", VarSort::kId);
  if (with_set) t.DeclareSet({x});
  {
    InternalService pick;
    pick.name = "pick";
    pick.pre = Condition::IsNull(x);
    pick.post = Condition::Rel(r, {x, y});
    if (with_set) pick.MarkInsert();
    t.AddInternalService(std::move(pick));
  }
  {
    InternalService drop;
    drop.name = "drop";
    drop.pre = Condition::Not(Condition::IsNull(x));
    drop.post = Condition::And(Condition::IsNull(x), Condition::IsNull(y));
    if (with_set) drop.MarkRetrieve();
    t.AddInternalService(std::move(drop));
  }
  return system;
}

/// Parent/child: the parent passes x to a child that must set its flag
/// to 1 before closing; the flag returns into the parent's `got`.
inline ArtifactSystem ParentChildSystem() {
  ArtifactSystem system;
  RelationId r = system.schema().AddRelation("R");
  (void)r;
  TaskId root = system.AddTask("Parent", kNoTask);
  Task& parent = system.task(root);
  int x = parent.vars().AddVar("x", VarSort::kId);
  int got = parent.vars().AddVar("got", VarSort::kNumeric);
  {
    InternalService pick;
    pick.name = "pick";
    pick.pre = Condition::IsNull(x);
    pick.post = Condition::And(Condition::Rel(0, {x}),
                               Condition::VarEq(got, got));
    parent.AddInternalService(std::move(pick));
  }
  TaskId child_id = system.AddTask("Child", root);
  Task& child = system.task(child_id);
  int cx = child.vars().AddVar("cx", VarSort::kId);
  int flag = child.vars().AddVar("flag", VarSort::kNumeric);
  child.AddInput(cx, x);
  child.AddOutput(got, flag);
  child.SetOpeningPre(Condition::Not(Condition::IsNull(x)));
  {
    LinearExpr e = LinearExpr::Var(flag);
    e.AddConstant(Rational(-1));
    child.SetClosingPre(
        Condition::Arith(LinearConstraint{e, Relop::kEq}));
    InternalService work;
    work.name = "work";
    work.pre = Condition::True();
    LinearExpr e2 = LinearExpr::Var(flag);
    e2.AddConstant(Rational(-1));
    work.post = Condition::Arith(LinearConstraint{e2, Relop::kEq});
    child.AddInternalService(std::move(work));
  }
  return system;
}

/// Property [G cond]@root as a one-node HltlProperty.
inline HltlProperty AlwaysProperty(TaskId task, CondPtr cond) {
  HltlProperty property;
  HltlNode node;
  node.task = task;
  node.props.push_back(HltlProp::Cond(std::move(cond)));
  node.skeleton = LtlFormula::Always(LtlFormula::Prop(0));
  property.AddNode(std::move(node));
  return property;
}

}  // namespace testing
}  // namespace has

#endif  // HAS_TESTS_BUILDERS_H_
