// Edge cases of the explorer's bounded LRU successor cache
// (KarpMillerOptions::succ_cache_capacity): a capacity of 1, the
// deferral of pinned-round evictions to the round end, and the hit/miss
// counter accounting contract (exactly one hit or miss per processed
// coverability node).
#include <gtest/gtest.h>

#include "vass/karp_miller.h"

namespace has {
namespace {

/// s0 fans out to three pump states A, B, A' where A and A' share VASS
/// state 1 — so one BFS round holds the state sequence [1, 2, 1] and a
/// capacity-1 cache can only stay correct by keeping round-pinned
/// entries alive past the cap.
ExplicitVass FanVass() {
  ExplicitVass v(4);
  v.AddAction(0, {{0, +1}}, 1);  // -> state 1, marking (1)
  v.AddAction(0, {{1, +1}}, 2);  // -> state 2, marking (0,1)
  v.AddAction(0, {{2, +1}}, 1);  // -> state 1, marking (0,0,1)
  v.AddAction(1, {{0, +1}}, 3);
  v.AddAction(2, {{1, +1}}, 3);
  return v;
}

void ExpectSameGraph(const KarpMiller& a, const KarpMiller& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (int n = 0; n < a.num_nodes(); ++n) {
    EXPECT_EQ(a.node_state(n), b.node_state(n)) << n;
    EXPECT_EQ(a.node_marking(n), b.node_marking(n)) << n;
    EXPECT_EQ(a.node_parent(n), b.node_parent(n)) << n;
    ASSERT_EQ(a.edges(n).size(), b.edges(n).size()) << n;
    for (size_t i = 0; i < a.edges(n).size(); ++i) {
      EXPECT_EQ(a.edges(n)[i].target, b.edges(n)[i].target) << n;
      EXPECT_EQ(a.edges(n)[i].label, b.edges(n)[i].label) << n;
    }
  }
}

TEST(SuccCacheTest, CapacityOneProducesTheSameGraph) {
  ExplicitVass v1 = FanVass();
  KarpMiller unbounded(&v1, {});
  unbounded.Build({0});
  for (int shards : {1, 2}) {
    ExplicitVass v2 = FanVass();
    KarpMillerOptions options;
    options.succ_cache_capacity = 1;
    options.num_shards = shards;
    KarpMiller tiny(&v2, options);
    tiny.Build({0});
    ExpectSameGraph(unbounded, tiny);
  }
}

TEST(SuccCacheTest, OneHitOrMissPerProcessedNode) {
  // The accounting contract: every processed (expanded) node charges
  // exactly one hit or one miss, regardless of capacity.
  for (size_t capacity : {size_t{1}, size_t{2}, size_t{1} << 14}) {
    ExplicitVass v = FanVass();
    KarpMillerOptions options;
    options.succ_cache_capacity = capacity;
    KarpMiller g(&v, options);
    g.Build({0});
    EXPECT_EQ(g.succ_cache_hits() + g.succ_cache_misses(),
              static_cast<size_t>(g.num_nodes()))
        << "capacity=" << capacity;
  }
}

TEST(SuccCacheTest, PinnedRoundEntrySurvivesCapacityOne) {
  // Sharded rounds pin every frontier state's entry: with capacity 1
  // and the round [state 1, state 2, state 1], the state-1 entry must
  // survive the state-2 insertion (its edge list may still be read
  // this round), so the third commit HITS. Eviction beyond the cap
  // happens only once the round's pins are released.
  ExplicitVass v = FanVass();
  KarpMillerOptions options;
  options.succ_cache_capacity = 1;
  options.num_shards = 2;
  KarpMiller g(&v, options);
  g.Build({0});
  // Round 1: miss(s0). Round 2, frontier [1, 2, 1]: miss(1), miss(2),
  // then a HIT on state 1 — possible only because the pinned entry was
  // not evicted when state 2 overflowed the cap. Round 3 (state 3):
  // one more miss.
  EXPECT_GE(g.succ_cache_hits(), 1u);
  EXPECT_EQ(g.succ_cache_hits() + g.succ_cache_misses(),
            static_cast<size_t>(g.num_nodes()));
}

TEST(SuccCacheTest, UnpinnedEntriesEvictAtCapacityOne) {
  // Once a round ends, its pins expire: revisiting an old state in a
  // LATER round must re-miss at capacity 1 (the entry was evicted),
  // while an unbounded cache hits. Chain: s0 -> s1 -> s2 -> s1' where
  // s1' re-enters state 1 with a bigger marking (distinct node, same
  // VASS state, different round).
  ExplicitVass v(3);
  v.AddAction(0, {{0, +1}}, 1);
  v.AddAction(1, {{0, +1}}, 2);
  v.AddAction(2, {{0, +1}}, 1);  // back to state 1, next round
  KarpMillerOptions tiny_options;
  tiny_options.succ_cache_capacity = 1;
  ExplicitVass v1 = v;
  KarpMiller tiny(&v1, tiny_options);
  tiny.Build({0});
  ExplicitVass v2 = v;
  KarpMiller big(&v2, {});
  big.Build({0});
  ExpectSameGraph(big, tiny);
  // The unbounded cache hits when state 1 recurs; the capacity-1 cache
  // has evicted it by then and misses strictly more often.
  EXPECT_GT(tiny.succ_cache_misses(), big.succ_cache_misses());
  EXPECT_EQ(tiny.succ_cache_hits() + tiny.succ_cache_misses(),
            static_cast<size_t>(tiny.num_nodes()));
}

}  // namespace
}  // namespace has
