#include <gtest/gtest.h>

#include "common/strings.h"
#include "schema/fk_graph.h"
#include "schema/schema.h"

namespace has {
namespace {

DatabaseSchema TravelSchema() {
  DatabaseSchema s;
  RelationId hotels = s.AddRelation("HOTELS");
  RelationId flights = s.AddRelation("FLIGHTS");
  s.relation(hotels).AddNumericAttribute("unit_price");
  s.relation(hotels).AddNumericAttribute("discount_price");
  s.relation(flights).AddNumericAttribute("price");
  s.relation(flights).AddForeignKey("comp_hotel_id", hotels);
  return s;
}

TEST(SchemaTest, TravelSchemaValid) {
  DatabaseSchema s = TravelSchema();
  EXPECT_TRUE(s.Validate().ok());
  EXPECT_EQ(s.num_relations(), 2);
  EXPECT_EQ(s.relation(1).arity(), 3);  // id, price, comp_hotel_id
  EXPECT_TRUE(s.FindRelation("HOTELS").has_value());
  EXPECT_FALSE(s.FindRelation("NOPE").has_value());
}

TEST(SchemaTest, DuplicateRelationRejected) {
  DatabaseSchema s;
  s.AddRelation("R");
  s.AddRelation("R");
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SchemaTest, AttrLookup) {
  DatabaseSchema s = TravelSchema();
  const Relation& flights = s.relation(*s.FindRelation("FLIGHTS"));
  ASSERT_TRUE(flights.FindAttr("comp_hotel_id").has_value());
  EXPECT_EQ(flights.ForeignKeyAttrs().size(), 1u);
  EXPECT_EQ(flights.NumericAttrs().size(), 1u);
}

TEST(FkGraphTest, AcyclicClassification) {
  FkGraph fk(TravelSchema());
  EXPECT_EQ(fk.Classify(), SchemaClass::kAcyclic);
}

TEST(FkGraphTest, LinearlyCyclicClassification) {
  // Employee -> Manager self-cycle through a single relation.
  DatabaseSchema s;
  RelationId emp = s.AddRelation("EMP");
  s.relation(emp).AddForeignKey("manager", emp);
  FkGraph fk(s);
  EXPECT_EQ(fk.Classify(), SchemaClass::kLinearlyCyclic);
}

TEST(FkGraphTest, CyclicClassification) {
  // Two parallel self-loops: two simple cycles through one relation.
  DatabaseSchema s;
  RelationId r = s.AddRelation("R");
  s.relation(r).AddForeignKey("a", r);
  s.relation(r).AddForeignKey("b", r);
  FkGraph fk(s);
  EXPECT_EQ(fk.Classify(), SchemaClass::kCyclic);
}

TEST(FkGraphTest, TwoRelationCycleIsLinear) {
  DatabaseSchema s;
  RelationId a = s.AddRelation("A");
  RelationId b = s.AddRelation("B");
  s.relation(a).AddForeignKey("to_b", b);
  s.relation(b).AddForeignKey("to_a", a);
  FkGraph fk(s);
  EXPECT_EQ(fk.Classify(), SchemaClass::kLinearlyCyclic);
}

TEST(FkGraphTest, PathCountingAcyclic) {
  FkGraph fk(TravelSchema());
  // From FLIGHTS: empty path + comp_hotel_id = 2 paths of length <= 1.
  EXPECT_EQ(fk.CountPaths(1, 1), 2u);
  // HOTELS has no outgoing FK: only the empty path.
  EXPECT_EQ(fk.CountPaths(0, 5), 1u);
  EXPECT_EQ(fk.MaxPaths(1), 2u);
}

TEST(FkGraphTest, PathCountingSaturates) {
  DatabaseSchema s;
  RelationId r = s.AddRelation("R");
  s.relation(r).AddForeignKey("a", r);
  s.relation(r).AddForeignKey("b", r);
  FkGraph fk(s);
  // 2^n paths: saturates for large n.
  EXPECT_EQ(fk.CountPaths(r, 2), 7u);  // 1 + 2 + 4
  EXPECT_EQ(fk.CountPaths(r, 60), kSaturated);
}

TEST(FkGraphTest, Reachability) {
  FkGraph fk(TravelSchema());
  EXPECT_TRUE(fk.Reachable(1, 0));   // FLIGHTS -> HOTELS
  EXPECT_FALSE(fk.Reachable(0, 1));  // not back
}

TEST(NavigationDepthTest, LeafFormula) {
  FkGraph fk(TravelSchema());
  // h = 1 + |vars| * F(1); F(1) = 2.
  EXPECT_EQ(NavigationDepthBound(fk, 3, {}), 1 + 3 * 2u);
}

TEST(NavigationDepthTest, GrowsWithChildren) {
  // A 7-relation FK chain: deeper navigation admits more paths, so the
  // parent's bound strictly exceeds the leaf's.
  DatabaseSchema s;
  for (int i = 0; i < 7; ++i) s.AddRelation(StrCat("R", i));
  for (int i = 0; i + 1 < 7; ++i) s.relation(i).AddForeignKey("next", i + 1);
  FkGraph fk(s);
  uint64_t leaf = NavigationDepthBound(fk, 2, {});
  uint64_t parent = NavigationDepthBound(fk, 2, {leaf});
  EXPECT_GT(parent, leaf);
}

}  // namespace
}  // namespace has
