#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <thread>

#include "core/type_pool.h"
#include "data/generator.h"

namespace has {
namespace {

struct Fixture {
  DatabaseSchema schema;
  VarScope scope;
  RelationId r2, r;
  int x, y, z, n;

  Fixture() {
    r2 = schema.AddRelation("R2");
    r = schema.AddRelation("R");
    schema.relation(r).AddForeignKey("fk", r2);
    schema.relation(r).AddNumericAttribute("val");
    x = scope.AddVar("x", VarSort::kId);
    y = scope.AddVar("y", VarSort::kId);
    z = scope.AddVar("z", VarSort::kId);
    n = scope.AddVar("n", VarSort::kNumeric);
  }

  PartialIsoType Fresh() { return PartialIsoType(&schema, &scope, 3); }
};

TEST(TypePoolTest, InternTwiceReturnsSameId) {
  Fixture f;
  TypePool pool;
  PartialIsoType a = f.Fresh();
  ASSERT_TRUE(a.AssertEq(a.VarElement(f.x), a.VarElement(f.y)));
  PartialIsoType b = f.Fresh();
  ASSERT_TRUE(b.AssertEq(b.VarElement(f.y), b.VarElement(f.x)));
  TypeId ia = pool.Intern(a);
  TypeId ib = pool.Intern(b);
  EXPECT_EQ(ia, ib);
  EXPECT_EQ(pool.num_types(), 1u);
  EXPECT_EQ(pool.stats().iso_hits, 1u);
  // A different constraint set gets a different id.
  PartialIsoType c = f.Fresh();
  ASSERT_TRUE(c.AssertNeq(c.VarElement(f.x), c.VarElement(f.y)));
  EXPECT_NE(pool.Intern(c), ia);
  EXPECT_EQ(pool.num_types(), 2u);
}

TEST(TypePoolTest, InternNormalizesFirst) {
  Fixture f;
  TypePool pool;
  // `raw` carries an unconstrained navigation element that Normalize
  // drops; interning must canonicalize it to the same id as the
  // pre-normalized twin.
  PartialIsoType raw = f.Fresh();
  int ex = raw.VarElement(f.x);
  ASSERT_TRUE(raw.AssertAnchor(ex, f.r));
  ASSERT_NE(raw.NavChild(ex, 1), -1);  // x.fk, unconstrained
  PartialIsoType normalized = raw;
  normalized.Normalize();
  EXPECT_EQ(pool.Intern(raw), pool.Intern(normalized));
  EXPECT_EQ(pool.num_types(), 1u);
}

TEST(TypePoolTest, ProjectRoundTripsToInternedId) {
  Fixture f;
  TypePool pool;
  PartialIsoType t = f.Fresh();
  ASSERT_TRUE(t.AssertEq(t.VarElement(f.x), t.VarElement(f.y)));
  ASSERT_TRUE(t.AssertNeq(t.VarElement(f.x), t.NullElement()));
  ASSERT_TRUE(t.AssertEq(t.VarElement(f.n), t.ConstElement(Rational(7))));
  // Direct construction of the projection onto {x, n}.
  PartialIsoType direct = f.Fresh();
  ASSERT_TRUE(direct.AssertNeq(direct.VarElement(f.x),
                               direct.NullElement()));
  ASSERT_TRUE(direct.AssertEq(direct.VarElement(f.n),
                              direct.ConstElement(Rational(7))));
  TypeId direct_id = pool.Intern(direct);
  PartialIsoType projected = t.Project({f.x, f.n}, 3);
  EXPECT_EQ(pool.Intern(projected), direct_id);
  // Projecting the projection again is the identity on ids.
  EXPECT_EQ(pool.Intern(projected.Project({f.x, f.n}, 3)), direct_id);
}

TEST(TypePoolTest, RenameRoundTripsToInternedId) {
  Fixture f;
  TypePool pool;
  PartialIsoType t = f.Fresh();
  ASSERT_TRUE(t.AssertAnchor(t.VarElement(f.x), f.r));
  ASSERT_TRUE(t.AssertNeq(t.VarElement(f.x), t.VarElement(f.y)));
  TypeId original = pool.Intern(t);
  // Swap x and y, then swap back: same canonical type, same id.
  std::map<int, int> swap{{f.x, f.y}, {f.y, f.x}, {f.z, f.z}, {f.n, f.n}};
  PartialIsoType swapped = t.Rename(swap, &f.scope);
  PartialIsoType back = swapped.Rename(swap, &f.scope);
  EXPECT_EQ(pool.Intern(back), original);
  // The swapped type itself differs (the anchor moved from x to y).
  EXPECT_NE(pool.Intern(swapped), original);
}

/// Random type built from constraints sampled out of a generated
/// database instance (data/generator): equalities, disequalities,
/// anchors and constant tags drawn from the instance's values.
PartialIsoType RandomType(const Fixture& f, const DatabaseInstance& db,
                          std::mt19937_64* rng) {
  PartialIsoType t(&f.schema, &f.scope, 3);
  std::uniform_int_distribution<int> var_pick(0, 2);  // x, y, z
  std::uniform_int_distribution<int> op_pick(0, 4);
  std::uniform_int_distribution<int> steps_pick(1, 6);
  const std::vector<Tuple>& tuples = db.tuples(f.r);
  int steps = steps_pick(*rng);
  for (int i = 0; i < steps; ++i) {
    int a = t.VarElement(var_pick(*rng));
    switch (op_pick(*rng)) {
      case 0:
        (void)t.AssertEq(a, t.VarElement(var_pick(*rng)));
        break;
      case 1:
        (void)t.AssertNeq(a, t.VarElement(var_pick(*rng)));
        break;
      case 2:
        (void)t.AssertAnchor(a, (*rng)() % 2 == 0 ? f.r : f.r2);
        break;
      case 3:
        (void)t.AssertEq(a, t.NullElement());
        break;
      case 4: {
        // Tag n with a numeric value from the generated instance.
        if (tuples.empty()) break;
        const Tuple& tuple = tuples[(*rng)() % tuples.size()];
        Rational value = Rational::FromDouble(tuple.back().real());
        (void)t.AssertEq(t.VarElement(f.n), t.ConstElement(value));
        break;
      }
    }
  }
  t.Normalize();
  return t;
}

TEST(TypePoolTest, DifferentialIdEqualityMatchesSignatureEquality) {
  Fixture f;
  GeneratorOptions gen;
  gen.tuples_per_relation = 5;
  gen.seed = 7;
  DatabaseInstance db = GenerateInstance(f.schema, gen);

  TypePool pool;
  std::mt19937_64 rng(20260730);
  std::vector<PartialIsoType> types;
  std::vector<TypeId> ids;
  std::vector<std::string> sigs;
  for (int i = 0; i < 200; ++i) {
    PartialIsoType t = RandomType(f, db, &rng);
    ids.push_back(pool.Intern(t));
    sigs.push_back(t.Signature());
    types.push_back(std::move(t));
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      bool sig_equal = sigs[i] == sigs[j];
      EXPECT_EQ(ids[i] == ids[j], sig_equal)
          << "id/signature equality diverged for pair (" << i << ", " << j
          << "):\n  " << sigs[i] << "\n  " << sigs[j];
      EXPECT_EQ(types[i].CanonicalEquals(types[j]), sig_equal);
      if (sig_equal) {
        EXPECT_EQ(types[i].CanonicalHash(), types[j].CanonicalHash());
      }
    }
  }
  // Sanity: the random pool exercised both hits and fresh interns.
  EXPECT_GT(pool.stats().iso_hits, 0u);
  EXPECT_GT(pool.num_types(), 1u);
}

TEST(TypePoolTest, ConcurrentInterningConsistentWithSignatures) {
  // N threads intern overlapping slices of a random corpus (each in its
  // own order) into one shared pool; ids must agree with Signature()
  // equality across ALL threads, and the pool must end with exactly the
  // distinct-signature count.
  Fixture f;
  GeneratorOptions gen;
  gen.tuples_per_relation = 5;
  gen.seed = 11;
  DatabaseInstance db = GenerateInstance(f.schema, gen);

  std::mt19937_64 rng(20260730);
  std::vector<PartialIsoType> corpus;
  std::vector<std::string> sigs;
  for (int i = 0; i < 400; ++i) {
    corpus.push_back(RandomType(f, db, &rng));
    sigs.push_back(corpus.back().Signature());
  }
  std::set<std::string> distinct(sigs.begin(), sigs.end());

  constexpr int kThreads = 8;
  TypePool pool;
  std::vector<std::vector<TypeId>> ids(kThreads,
                                       std::vector<TypeId>(corpus.size()));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread walks the corpus at a different stride so the
      // first-interner of any given type varies across threads.
      std::mt19937_64 order_rng(1000 + t);
      std::vector<size_t> order(corpus.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::shuffle(order.begin(), order.end(), order_rng);
      for (size_t i : order) ids[t][i] = pool.Intern(corpus[i]);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(pool.num_types(), distinct.size());
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[t], ids[0]) << "thread " << t << " saw different ids";
  }
  for (size_t i = 0; i < corpus.size(); ++i) {
    for (size_t j = i + 1; j < corpus.size(); ++j) {
      EXPECT_EQ(ids[0][i] == ids[0][j], sigs[i] == sigs[j])
          << "id/signature equality diverged for pair (" << i << ", " << j
          << ")";
    }
  }
}

TEST(TypePoolTest, MergeFromRemapsShardLocalIds) {
  // Two "shard" pools intern overlapping corpora; merging the second
  // into the first must map every id to the first pool's id for the
  // same signature.
  Fixture f;
  GeneratorOptions gen;
  gen.tuples_per_relation = 5;
  gen.seed = 13;
  DatabaseInstance db = GenerateInstance(f.schema, gen);
  std::mt19937_64 rng(42);
  std::vector<PartialIsoType> corpus;
  for (int i = 0; i < 120; ++i) corpus.push_back(RandomType(f, db, &rng));

  TypePool target;
  TypePool shard;
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (i % 3 != 2) target.Intern(corpus[i]);  // overlap: 2/3 of corpus
    if (i % 2 == 0) shard.Intern(corpus[i]);
  }
  Cell pos(2);
  pos.set_sign(0, kSignPos);
  Cell neg(2);
  neg.set_sign(0, kSignNeg);
  target.InternCell(pos);
  shard.InternCell(neg);
  shard.InternCell(pos);

  std::vector<TypeId> type_remap;
  std::vector<CellId> cell_remap;
  target.MergeFrom(shard, &type_remap, &cell_remap);

  ASSERT_EQ(type_remap.size(), shard.num_types());
  for (size_t i = 0; i < shard.num_types(); ++i) {
    const PartialIsoType& original = shard.type(static_cast<TypeId>(i));
    TypeId mapped = type_remap[i];
    EXPECT_EQ(target.type(mapped).Signature(), original.Signature());
    // Re-interning resolves to the same canonical id.
    EXPECT_EQ(target.InternNormalized(original), mapped);
  }
  ASSERT_EQ(cell_remap.size(), shard.num_cells());
  for (size_t i = 0; i < shard.num_cells(); ++i) {
    EXPECT_TRUE(target.cell(cell_remap[i]) ==
                shard.cell(static_cast<CellId>(i)));
  }
}

TEST(TypePoolTest, CellInterning) {
  TypePool pool;
  Cell a(3);
  a.set_sign(0, kSignPos);
  Cell b(3);
  b.set_sign(0, kSignPos);
  Cell c(3);
  c.set_sign(0, kSignNeg);
  CellId ia = pool.InternCell(a);
  EXPECT_EQ(pool.InternCell(b), ia);
  EXPECT_NE(pool.InternCell(c), ia);
  EXPECT_EQ(pool.num_cells(), 2u);
  EXPECT_EQ(pool.cell(ia).sign(0), kSignPos);
}

}  // namespace
}  // namespace has
