#include <gtest/gtest.h>

#include <random>

#include "core/type_pool.h"
#include "data/generator.h"

namespace has {
namespace {

struct Fixture {
  DatabaseSchema schema;
  VarScope scope;
  RelationId r2, r;
  int x, y, z, n;

  Fixture() {
    r2 = schema.AddRelation("R2");
    r = schema.AddRelation("R");
    schema.relation(r).AddForeignKey("fk", r2);
    schema.relation(r).AddNumericAttribute("val");
    x = scope.AddVar("x", VarSort::kId);
    y = scope.AddVar("y", VarSort::kId);
    z = scope.AddVar("z", VarSort::kId);
    n = scope.AddVar("n", VarSort::kNumeric);
  }

  PartialIsoType Fresh() { return PartialIsoType(&schema, &scope, 3); }
};

TEST(TypePoolTest, InternTwiceReturnsSameId) {
  Fixture f;
  TypePool pool;
  PartialIsoType a = f.Fresh();
  ASSERT_TRUE(a.AssertEq(a.VarElement(f.x), a.VarElement(f.y)));
  PartialIsoType b = f.Fresh();
  ASSERT_TRUE(b.AssertEq(b.VarElement(f.y), b.VarElement(f.x)));
  TypeId ia = pool.Intern(a);
  TypeId ib = pool.Intern(b);
  EXPECT_EQ(ia, ib);
  EXPECT_EQ(pool.num_types(), 1u);
  EXPECT_EQ(pool.stats().iso_hits, 1u);
  // A different constraint set gets a different id.
  PartialIsoType c = f.Fresh();
  ASSERT_TRUE(c.AssertNeq(c.VarElement(f.x), c.VarElement(f.y)));
  EXPECT_NE(pool.Intern(c), ia);
  EXPECT_EQ(pool.num_types(), 2u);
}

TEST(TypePoolTest, InternNormalizesFirst) {
  Fixture f;
  TypePool pool;
  // `raw` carries an unconstrained navigation element that Normalize
  // drops; interning must canonicalize it to the same id as the
  // pre-normalized twin.
  PartialIsoType raw = f.Fresh();
  int ex = raw.VarElement(f.x);
  ASSERT_TRUE(raw.AssertAnchor(ex, f.r));
  ASSERT_NE(raw.NavChild(ex, 1), -1);  // x.fk, unconstrained
  PartialIsoType normalized = raw;
  normalized.Normalize();
  EXPECT_EQ(pool.Intern(raw), pool.Intern(normalized));
  EXPECT_EQ(pool.num_types(), 1u);
}

TEST(TypePoolTest, ProjectRoundTripsToInternedId) {
  Fixture f;
  TypePool pool;
  PartialIsoType t = f.Fresh();
  ASSERT_TRUE(t.AssertEq(t.VarElement(f.x), t.VarElement(f.y)));
  ASSERT_TRUE(t.AssertNeq(t.VarElement(f.x), t.NullElement()));
  ASSERT_TRUE(t.AssertEq(t.VarElement(f.n), t.ConstElement(Rational(7))));
  // Direct construction of the projection onto {x, n}.
  PartialIsoType direct = f.Fresh();
  ASSERT_TRUE(direct.AssertNeq(direct.VarElement(f.x),
                               direct.NullElement()));
  ASSERT_TRUE(direct.AssertEq(direct.VarElement(f.n),
                              direct.ConstElement(Rational(7))));
  TypeId direct_id = pool.Intern(direct);
  PartialIsoType projected = t.Project({f.x, f.n}, 3);
  EXPECT_EQ(pool.Intern(projected), direct_id);
  // Projecting the projection again is the identity on ids.
  EXPECT_EQ(pool.Intern(projected.Project({f.x, f.n}, 3)), direct_id);
}

TEST(TypePoolTest, RenameRoundTripsToInternedId) {
  Fixture f;
  TypePool pool;
  PartialIsoType t = f.Fresh();
  ASSERT_TRUE(t.AssertAnchor(t.VarElement(f.x), f.r));
  ASSERT_TRUE(t.AssertNeq(t.VarElement(f.x), t.VarElement(f.y)));
  TypeId original = pool.Intern(t);
  // Swap x and y, then swap back: same canonical type, same id.
  std::map<int, int> swap{{f.x, f.y}, {f.y, f.x}, {f.z, f.z}, {f.n, f.n}};
  PartialIsoType swapped = t.Rename(swap, &f.scope);
  PartialIsoType back = swapped.Rename(swap, &f.scope);
  EXPECT_EQ(pool.Intern(back), original);
  // The swapped type itself differs (the anchor moved from x to y).
  EXPECT_NE(pool.Intern(swapped), original);
}

/// Random type built from constraints sampled out of a generated
/// database instance (data/generator): equalities, disequalities,
/// anchors and constant tags drawn from the instance's values.
PartialIsoType RandomType(const Fixture& f, const DatabaseInstance& db,
                          std::mt19937_64* rng) {
  PartialIsoType t(&f.schema, &f.scope, 3);
  std::uniform_int_distribution<int> var_pick(0, 2);  // x, y, z
  std::uniform_int_distribution<int> op_pick(0, 4);
  std::uniform_int_distribution<int> steps_pick(1, 6);
  const std::vector<Tuple>& tuples = db.tuples(f.r);
  int steps = steps_pick(*rng);
  for (int i = 0; i < steps; ++i) {
    int a = t.VarElement(var_pick(*rng));
    switch (op_pick(*rng)) {
      case 0:
        (void)t.AssertEq(a, t.VarElement(var_pick(*rng)));
        break;
      case 1:
        (void)t.AssertNeq(a, t.VarElement(var_pick(*rng)));
        break;
      case 2:
        (void)t.AssertAnchor(a, (*rng)() % 2 == 0 ? f.r : f.r2);
        break;
      case 3:
        (void)t.AssertEq(a, t.NullElement());
        break;
      case 4: {
        // Tag n with a numeric value from the generated instance.
        if (tuples.empty()) break;
        const Tuple& tuple = tuples[(*rng)() % tuples.size()];
        Rational value = Rational::FromDouble(tuple.back().real());
        (void)t.AssertEq(t.VarElement(f.n), t.ConstElement(value));
        break;
      }
    }
  }
  t.Normalize();
  return t;
}

TEST(TypePoolTest, DifferentialIdEqualityMatchesSignatureEquality) {
  Fixture f;
  GeneratorOptions gen;
  gen.tuples_per_relation = 5;
  gen.seed = 7;
  DatabaseInstance db = GenerateInstance(f.schema, gen);

  TypePool pool;
  std::mt19937_64 rng(20260730);
  std::vector<PartialIsoType> types;
  std::vector<TypeId> ids;
  std::vector<std::string> sigs;
  for (int i = 0; i < 200; ++i) {
    PartialIsoType t = RandomType(f, db, &rng);
    ids.push_back(pool.Intern(t));
    sigs.push_back(t.Signature());
    types.push_back(std::move(t));
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      bool sig_equal = sigs[i] == sigs[j];
      EXPECT_EQ(ids[i] == ids[j], sig_equal)
          << "id/signature equality diverged for pair (" << i << ", " << j
          << "):\n  " << sigs[i] << "\n  " << sigs[j];
      EXPECT_EQ(types[i].CanonicalEquals(types[j]), sig_equal);
      if (sig_equal) {
        EXPECT_EQ(types[i].CanonicalHash(), types[j].CanonicalHash());
      }
    }
  }
  // Sanity: the random pool exercised both hits and fresh interns.
  EXPECT_GT(pool.stats().iso_hits, 0u);
  EXPECT_GT(pool.num_types(), 1u);
}

TEST(TypePoolTest, CellInterning) {
  TypePool pool;
  Cell a(3);
  a.set_sign(0, kSignPos);
  Cell b(3);
  b.set_sign(0, kSignPos);
  Cell c(3);
  c.set_sign(0, kSignNeg);
  CellId ia = pool.InternCell(a);
  EXPECT_EQ(pool.InternCell(b), ia);
  EXPECT_NE(pool.InternCell(c), ia);
  EXPECT_EQ(pool.num_cells(), 2u);
  EXPECT_EQ(pool.cell(ia).sign(0), kSignPos);
}

}  // namespace
}  // namespace has
