// Cross-validation of the symbolic verifier against the concrete
// semantics: when the verifier reports VIOLATED, the randomized bounded
// checker must be able to exhibit a concrete tree satisfying the
// negated property on some database; when it reports HOLDS, no
// simulated tree may satisfy the negation.
#include <gtest/gtest.h>

#include "builders.h"
#include "core/verifier.h"
#include "data/generator.h"
#include "runs/bounded_checker.h"
#include "spec/parser.h"

namespace has {
namespace {

struct Case {
  std::string name;
  bool with_set;
  HltlProperty property;
};

std::vector<Case> MakeCases() {
  std::vector<Case> cases;
  {
    Case c;
    c.name = "x_stays_null (violated)";
    c.with_set = false;
    c.property = testing::AlwaysProperty(0, Condition::IsNull(0));
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.name = "tautology (holds)";
    c.with_set = false;
    c.property = testing::AlwaysProperty(
        0, Condition::Or(Condition::IsNull(0),
                         Condition::Not(Condition::IsNull(0))));
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.name = "x_y_never_both (violated: pick relates them)";
    c.with_set = false;
    c.property = testing::AlwaysProperty(
        0, Condition::Or(Condition::IsNull(0), Condition::IsNull(1)));
    cases.push_back(std::move(c));
  }
  return cases;
}

class CrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(CrossValidation, SymbolicAgreesWithConcrete) {
  Case c = std::move(MakeCases()[static_cast<size_t>(GetParam())]);
  ArtifactSystem system = testing::FlatSystem(c.with_set);
  VerifyResult symbolic = Verify(system, c.property);
  ASSERT_NE(symbolic.verdict, Verdict::kInconclusive) << c.name;

  GeneratorOptions gen;
  gen.tuples_per_relation = 3;
  DatabaseInstance db = GenerateInstance(system.schema(), gen);
  HltlProperty negated = c.property.Negated();
  std::optional<RunTree> concrete =
      FindTreeSatisfying(system, db, negated, 120);

  if (symbolic.verdict == Verdict::kHolds) {
    EXPECT_FALSE(concrete.has_value())
        << c.name << ": concrete counterexample but symbolic HOLDS";
  } else {
    EXPECT_TRUE(concrete.has_value())
        << c.name << ": symbolic VIOLATED but no concrete witness found";
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, CrossValidation, ::testing::Range(0, 3));

// Two independent single-variable "modules" in one task: relation P
// over x (bindx/storex/loadx) and relation Q over y (bindy/storey —
// OPTIONAL — /loady). The modules share no variables, services or
// conditions, so every verdict over one module must be independent of
// the other's presence.
constexpr char kTwoModuleSpecWithStorey[] = R"(
system {
  relation R { }
  task Main {
    ids: x, y;
    set P (x);
    set Q (y);
    service bindx { pre: x == null; post: R(x); }
    service bindy { pre: y == null; post: R(y); }
    service storex { pre: x != null; post: true; insert into P; }
    service storey { pre: y != null; post: true; insert into Q; }
    service loadx { pre: true; post: x != null; retrieve from P; }
    service loady { pre: true; post: y != null; retrieve from Q; }
  }
}
property no_loadx { G ! svc(loadx) }
property no_loady { G ! svc(loady) }
property neither { (G ! svc(loadx)) && (G ! svc(loady)) }
)";

/// The same two-module system with storey REMOVED: Q stays empty
/// forever, so loady can never fire.
constexpr char kTwoModuleSpecNoStorey[] = R"(
system {
  relation R { }
  task Main {
    ids: x, y;
    set P (x);
    set Q (y);
    service bindx { pre: x == null; post: R(x); }
    service bindy { pre: y == null; post: R(y); }
    service storex { pre: x != null; post: true; insert into P; }
    service loadx { pre: true; post: x != null; retrieve from P; }
    service loady { pre: true; post: y != null; retrieve from Q; }
  }
}
property no_loadx { G ! svc(loadx) }
property no_loady { G ! svc(loady) }
property neither { (G ! svc(loadx)) && (G ! svc(loady)) }
)";

/// Single-module projections of the two systems (only the x/P or only
/// the y/Q module), for the independence product check.
constexpr char kModuleXOnly[] = R"(
system {
  relation R { }
  task Main {
    ids: x;
    set P (x);
    service bindx { pre: x == null; post: R(x); }
    service storex { pre: x != null; post: true; insert into P; }
    service loadx { pre: true; post: x != null; retrieve from P; }
  }
}
property no_loadx { G ! svc(loadx) }
)";

constexpr char kModuleYOnlyNoStorey[] = R"(
system {
  relation R { }
  task Main {
    ids: y;
    set Q (y);
    service bindy { pre: y == null; post: R(y); }
    service loady { pre: true; post: y != null; retrieve from Q; }
  }
}
property no_loady { G ! svc(loady) }
)";

Verdict VerdictOf(const char* spec, const std::string& property) {
  auto parsed = ParseSpec(spec);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ValidateSystem(parsed->system).ok())
      << ValidateSystem(parsed->system).ToString();
  const HltlProperty* p = parsed->FindProperty(property);
  EXPECT_NE(p, nullptr) << property;
  VerifyResult result = Verify(parsed->system, *p);
  EXPECT_NE(result.verdict, Verdict::kInconclusive) << property;
  return result.verdict;
}

/// Cross-validates one (spec, property) pair against the concrete
/// semantics, FlatSystem-style.
void ExpectConcreteAgreement(const char* spec, const std::string& property,
                             Verdict expected) {
  auto parsed = ParseSpec(spec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const HltlProperty* p = parsed->FindProperty(property);
  ASSERT_NE(p, nullptr);
  VerifyResult symbolic = Verify(parsed->system, *p);
  EXPECT_EQ(symbolic.verdict, expected) << property;
  GeneratorOptions gen;
  gen.tuples_per_relation = 3;
  DatabaseInstance db = GenerateInstance(parsed->system.schema(), gen);
  std::optional<RunTree> concrete =
      FindTreeSatisfying(parsed->system, db, p->Negated(), 150);
  if (symbolic.verdict == Verdict::kHolds) {
    EXPECT_FALSE(concrete.has_value())
        << property << ": concrete counterexample but symbolic HOLDS";
  } else {
    EXPECT_TRUE(concrete.has_value())
        << property << ": symbolic VIOLATED but no concrete witness found";
  }
}

TEST(MultiRelationCrossValidation, SymbolicAgreesWithConcrete) {
  ExpectConcreteAgreement(kTwoModuleSpecWithStorey, "no_loadx",
                          Verdict::kViolated);
  ExpectConcreteAgreement(kTwoModuleSpecWithStorey, "no_loady",
                          Verdict::kViolated);
  ExpectConcreteAgreement(kTwoModuleSpecNoStorey, "no_loady",
                          Verdict::kHolds);
  ExpectConcreteAgreement(kTwoModuleSpecNoStorey, "neither",
                          Verdict::kViolated);
}

TEST(MultiRelationCrossValidation, IndependentModulesProductVerdict) {
  // The two relations are semantically independent, so each module's
  // verdict in the combined system must equal its verdict alone, and
  // the conjunction's verdict must be the product (HOLDS iff both
  // hold).
  Verdict x_alone = VerdictOf(kModuleXOnly, "no_loadx");
  Verdict y_alone = VerdictOf(kModuleYOnlyNoStorey, "no_loady");
  EXPECT_EQ(x_alone, Verdict::kViolated);
  EXPECT_EQ(y_alone, Verdict::kHolds);
  EXPECT_EQ(VerdictOf(kTwoModuleSpecNoStorey, "no_loadx"), x_alone);
  EXPECT_EQ(VerdictOf(kTwoModuleSpecNoStorey, "no_loady"), y_alone);
  Verdict product = (x_alone == Verdict::kHolds &&
                     y_alone == Verdict::kHolds)
                        ? Verdict::kHolds
                        : Verdict::kViolated;
  EXPECT_EQ(VerdictOf(kTwoModuleSpecNoStorey, "neither"), product);
  // And with storey present both modules are violated — the product
  // flips together with its factors.
  EXPECT_EQ(VerdictOf(kTwoModuleSpecWithStorey, "neither"),
            Verdict::kViolated);
}

TEST(MultiRelationCrossValidation, SharedTupleVariableKeepsRelationsApart) {
  // Two relations over the SAME variable: their TS-type projections are
  // textually identical (equal pooled TypeIds), so only the
  // (relation, TypeId) dimension keying keeps the counter groups apart.
  // Inserting into P must not make a retrieve from Q feasible.
  constexpr char spec[] = R"(
system {
  relation R { }
  task Main {
    ids: x;
    set P (x);
    set Q (x);
    service bind { pre: x == null; post: R(x); }
    service storeP { pre: x != null; post: true; insert into P; }
    service loadQ { pre: true; post: x != null; retrieve from Q; }
  }
}
property q_stays_empty { G ! svc(loadQ) }
)";
  ExpectConcreteAgreement(spec, "q_stays_empty", Verdict::kHolds);
}

TEST(CrossValidation, HierarchicalViolationHasConcreteWitness) {
  ArtifactSystem system = testing::ParentChildSystem();
  LinearExpr e = LinearExpr::Var(1);
  HltlProperty property = testing::AlwaysProperty(
      0, Condition::Arith(LinearConstraint{e, Relop::kEq}));  // got == 0
  VerifyResult symbolic = Verify(system, property);
  ASSERT_EQ(symbolic.verdict, Verdict::kViolated);
  GeneratorOptions gen;
  DatabaseInstance db = GenerateInstance(system.schema(), gen);
  std::optional<RunTree> witness =
      FindTreeSatisfying(system, db, property.Negated(), 200);
  EXPECT_TRUE(witness.has_value());
}

}  // namespace
}  // namespace has
