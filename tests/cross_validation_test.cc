// Cross-validation of the symbolic verifier against the concrete
// semantics: when the verifier reports VIOLATED, the randomized bounded
// checker must be able to exhibit a concrete tree satisfying the
// negated property on some database; when it reports HOLDS, no
// simulated tree may satisfy the negation.
#include <gtest/gtest.h>

#include "builders.h"
#include "core/verifier.h"
#include "data/generator.h"
#include "runs/bounded_checker.h"

namespace has {
namespace {

struct Case {
  std::string name;
  bool with_set;
  HltlProperty property;
};

std::vector<Case> MakeCases() {
  std::vector<Case> cases;
  {
    Case c;
    c.name = "x_stays_null (violated)";
    c.with_set = false;
    c.property = testing::AlwaysProperty(0, Condition::IsNull(0));
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.name = "tautology (holds)";
    c.with_set = false;
    c.property = testing::AlwaysProperty(
        0, Condition::Or(Condition::IsNull(0),
                         Condition::Not(Condition::IsNull(0))));
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.name = "x_y_never_both (violated: pick relates them)";
    c.with_set = false;
    c.property = testing::AlwaysProperty(
        0, Condition::Or(Condition::IsNull(0), Condition::IsNull(1)));
    cases.push_back(std::move(c));
  }
  return cases;
}

class CrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(CrossValidation, SymbolicAgreesWithConcrete) {
  Case c = std::move(MakeCases()[static_cast<size_t>(GetParam())]);
  ArtifactSystem system = testing::FlatSystem(c.with_set);
  VerifyResult symbolic = Verify(system, c.property);
  ASSERT_NE(symbolic.verdict, Verdict::kInconclusive) << c.name;

  GeneratorOptions gen;
  gen.tuples_per_relation = 3;
  DatabaseInstance db = GenerateInstance(system.schema(), gen);
  HltlProperty negated = c.property.Negated();
  std::optional<RunTree> concrete =
      FindTreeSatisfying(system, db, negated, 120);

  if (symbolic.verdict == Verdict::kHolds) {
    EXPECT_FALSE(concrete.has_value())
        << c.name << ": concrete counterexample but symbolic HOLDS";
  } else {
    EXPECT_TRUE(concrete.has_value())
        << c.name << ": symbolic VIOLATED but no concrete witness found";
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, CrossValidation, ::testing::Range(0, 3));

TEST(CrossValidation, HierarchicalViolationHasConcreteWitness) {
  ArtifactSystem system = testing::ParentChildSystem();
  LinearExpr e = LinearExpr::Var(1);
  HltlProperty property = testing::AlwaysProperty(
      0, Condition::Arith(LinearConstraint{e, Relop::kEq}));  // got == 0
  VerifyResult symbolic = Verify(system, property);
  ASSERT_EQ(symbolic.verdict, Verdict::kViolated);
  GeneratorOptions gen;
  DatabaseInstance db = GenerateInstance(system.schema(), gen);
  std::optional<RunTree> witness =
      FindTreeSatisfying(system, db, property.Negated(), 200);
  EXPECT_TRUE(witness.has_value());
}

}  // namespace
}  // namespace has
