#include <gtest/gtest.h>

#include "model/validate.h"
#include "spec/lexer.h"
#include "spec/parser.h"
#include "spec/printer.h"

namespace has {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("task T { x <- y; a -> b; n <= 3.5 && !p }");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.front(), TokKind::kIdent);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokKind::kLArrow),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokKind::kArrow),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokKind::kLe),
            kinds.end());
  EXPECT_EQ(kinds.back(), TokKind::kEnd);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("a # comment\nb // another\nc");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 4u);  // a b c END
}

TEST(LexerTest, BadCharacterRejected) {
  EXPECT_FALSE(Tokenize("a $ b").ok());
}

constexpr char kTinySpec[] = R"(
system {
  relation R { v: num; }
  task Main {
    ids: x; nums: n;
    input: ;
    service go { pre: x == null; post: R(x, n) && n >= 0; }
  }
}
property p1 { G {x == null} }
property p2 { F svc(go) }
)";

TEST(ParserTest, ParsesTinySpec) {
  auto parsed = ParseSpec(kTinySpec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ValidateSystem(parsed->system).ok());
  EXPECT_EQ(parsed->system.num_tasks(), 1);
  EXPECT_EQ(parsed->properties.size(), 2u);
  ASSERT_NE(parsed->FindProperty("p1"), nullptr);
  EXPECT_TRUE(parsed->FindProperty("p1")->Validate(parsed->system).ok());
  EXPECT_TRUE(parsed->FindProperty("p2")->Validate(parsed->system).ok());
  EXPECT_EQ(parsed->FindProperty("zzz"), nullptr);
}

TEST(ParserTest, ConditionKinds) {
  DatabaseSchema schema;
  RelationId r = schema.AddRelation("R");
  schema.relation(r).AddNumericAttribute("v");
  VarScope scope;
  scope.AddVar("x", VarSort::kId);
  scope.AddVar("n", VarSort::kNumeric);
  auto c1 = ParseCondition("x != null && n == 3", scope, schema);
  ASSERT_TRUE(c1.ok()) << c1.status().ToString();
  EXPECT_TRUE((*c1)->CheckWellFormed(scope, schema).ok());
  auto c2 = ParseCondition("2*n - 1 <= n + 4", scope, schema);
  ASSERT_TRUE(c2.ok());
  EXPECT_TRUE((*c2)->UsesArithmetic());
  auto c3 = ParseCondition("R(x, n)", scope, schema);
  ASSERT_TRUE(c3.ok());
  EXPECT_EQ((*c3)->kind(), CondKind::kRel);
  // ID compared with a number is rejected.
  EXPECT_FALSE(ParseCondition("x == 3", scope, schema).ok());
  EXPECT_FALSE(ParseCondition("x <= x", scope, schema).ok());
}

TEST(ParserTest, NestedTasksAndMappings) {
  constexpr char spec[] = R"(
system {
  relation R { }
  task Root {
    ids: x; nums: amount;
    service init { pre: x == null; post: R(x); }
    task Sub {
      ids: sx; nums: flag;
      input: sx <- x;
      output: flag -> amount;
      open when x != null;
      close when flag == 1;
      service work { pre: true; post: flag == 1; }
    }
  }
}
)";
  auto parsed = ParseSpec(spec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ValidateSystem(parsed->system).ok());
  const Task& sub = parsed->system.task(1);
  EXPECT_EQ(sub.fin().size(), 1u);
  EXPECT_EQ(sub.fout().size(), 1u);
  EXPECT_EQ(parsed->system.Depth(), 2);
}

TEST(ParserTest, ChildFormulaNodes) {
  constexpr char spec[] = R"(
system {
  relation R { }
  task Root {
    ids: x;
    task Sub {
      ids: sx;
      input: sx <- x;
      open when x != null;
      close when true;
      service noop { pre: true; post: true; }
    }
    service init { pre: x == null; post: R(x); }
  }
}
property nested { G ( open(Sub) -> [ F {sx != null} ]@Sub ) }
)";
  auto parsed = ParseSpec(spec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const HltlProperty* p = parsed->FindProperty("nested");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->num_nodes(), 2);
  EXPECT_TRUE(p->Validate(parsed->system).ok());
  EXPECT_FALSE(PrintProperty(parsed->system, *p).empty());
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto bad = ParseSpec("system { task T { ids: x }");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line"), std::string::npos);
}

TEST(PrinterTest, SystemRoundTripsTextually) {
  auto parsed = ParseSpec(kTinySpec);
  ASSERT_TRUE(parsed.ok());
  std::string printed = PrintSystem(parsed->system);
  EXPECT_NE(printed.find("Main"), std::string::npos);
  EXPECT_NE(printed.find("go"), std::string::npos);
}

constexpr char kMultiRelSpec[] = R"(
system {
  relation R { next -> R2; }
  relation R2 { price: num; }
  task Main {
    ids: x, y;  nums: n;
    set Pending (x);
    set Done (x, y);
    init when true;
    service bind {
      pre: x == null && y == null;
      post: R(x, y) && n == 0;
    }
    service enqueue {
      pre: x != null;
      post: true;
      insert into Pending;
    }
    service finish {
      pre: true;
      post: x != null && y != null;
      retrieve from Pending;
      insert into Done;
    }
    task Audit {
      ids: ax;
      input: ax <- x;
      set (ax);
      open when x != null;
      close when ax != null;
      service log { pre: ax != null; post: true; insert; }
    }
  }
}
property drains { G ! svc(finish) }
)";

TEST(ParserTest, MultiRelationSpecParsesAndValidates) {
  auto parsed = ParseSpec(kMultiRelSpec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ValidateSystem(parsed->system).ok())
      << ValidateSystem(parsed->system).ToString();
  const Task& main = parsed->system.task(0);
  ASSERT_EQ(main.num_set_relations(), 2);
  EXPECT_EQ(main.set_relations()[0].name, "Pending");
  EXPECT_EQ(main.set_relations()[1].name, "Done");
  EXPECT_EQ(main.set_relations()[0].vars.size(), 1u);
  EXPECT_EQ(main.set_relations()[1].vars.size(), 2u);
  // enqueue: +Pending; finish: -Pending +Done in ONE delta.
  EXPECT_TRUE(main.service(1).InsertsInto(0));
  EXPECT_FALSE(main.service(1).HasSetOps() &&
               main.service(1).RetrievesFrom(0));
  EXPECT_TRUE(main.service(2).RetrievesFrom(0));
  EXPECT_TRUE(main.service(2).InsertsInto(1));
  // The child uses the single-relation sugar: relation named "S".
  const Task& audit = parsed->system.task(1);
  ASSERT_EQ(audit.num_set_relations(), 1);
  EXPECT_EQ(audit.set_relations()[0].name, "S");
  EXPECT_TRUE(audit.service(0).InsertsInto(0));
}

TEST(ParserTest, MultiRelationErrors) {
  // Unknown relation in a service update.
  EXPECT_FALSE(ParseSpec(R"(
system {
  relation R { }
  task T {
    ids: x;
    set A (x);
    service s { pre: true; post: true; insert into Nope; }
  }
})")
                   .ok());
  // Bare insert is ambiguous with two relations declared.
  auto ambiguous = ParseSpec(R"(
system {
  relation R { }
  task T {
    ids: x, y;
    set A (x);
    set B (y);
    service s { pre: true; post: true; insert; }
  }
})");
  ASSERT_FALSE(ambiguous.ok());
  EXPECT_NE(ambiguous.status().message().find("ambiguous"),
            std::string::npos);
  // Bare retrieve without any relation.
  EXPECT_FALSE(ParseSpec(R"(
system {
  relation R { }
  task T {
    ids: x;
    service s { pre: true; post: true; retrieve; }
  }
})")
                   .ok());
  // Duplicate relation name.
  EXPECT_FALSE(ParseSpec(R"(
system {
  relation R { }
  task T {
    ids: x, y;
    set A (x);
    set A (y);
  }
})")
                   .ok());
  // `set` blocks may FOLLOW the services that update them.
  auto late = ParseSpec(R"(
system {
  relation R { }
  task T {
    ids: x;
    service s { pre: true; post: true; insert into A; }
    set A (x);
  }
})");
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  EXPECT_TRUE(late->system.task(0).service(0).InsertsInto(0));
}

TEST(PrinterTest, MultiRelationSourceRoundTrips) {
  auto parsed = ParseSpec(kMultiRelSpec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::string printed = PrintSystemSource(parsed->system);
  auto reparsed = ParseSpec(printed);
  ASSERT_TRUE(reparsed.ok())
      << reparsed.status().ToString() << "\nprinted:\n" << printed;
  EXPECT_TRUE(ValidateSystem(reparsed->system).ok());
  // Parse → print → parse → print reaches a fixpoint, and the debug
  // dump (which covers scopes, relations and service deltas) agrees.
  EXPECT_EQ(PrintSystemSource(reparsed->system), printed);
  EXPECT_EQ(PrintSystem(reparsed->system), PrintSystem(parsed->system));
  const Task& main = reparsed->system.task(0);
  ASSERT_EQ(main.num_set_relations(), 2);
  EXPECT_EQ(main.set_relations()[0].name, "Pending");
  EXPECT_TRUE(main.service(2).RetrievesFrom(0));
  EXPECT_TRUE(main.service(2).InsertsInto(1));
  EXPECT_EQ(reparsed->system.task(1).set_relations()[0].name, "S");
}

TEST(PrinterTest, DecimalLiteralsRoundTrip) {
  // Non-integer rationals must print as decimals, not "num/den" (the
  // lexer has no '/'): 0.5 parses to 1/2 and must come back out as a
  // parseable literal.
  constexpr char spec[] = R"(
system {
  relation R { v: num; }
  task Main {
    ids: x; nums: n;
    service go { pre: n < 0.5; post: 2.25*n - 0.5 <= n && n == 0.125; }
  }
}
)";
  auto parsed = ParseSpec(spec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::string printed = PrintSystemSource(parsed->system);
  EXPECT_EQ(printed.find('/'), std::string::npos) << printed;
  auto reparsed = ParseSpec(printed);
  ASSERT_TRUE(reparsed.ok())
      << reparsed.status().ToString() << "\nprinted:\n" << printed;
  EXPECT_EQ(PrintSystemSource(reparsed->system), printed);
  EXPECT_EQ(PrintSystem(reparsed->system), PrintSystem(parsed->system));
}

TEST(PrinterTest, TinySpecSourceRoundTrips) {
  auto parsed = ParseSpec(kTinySpec);
  ASSERT_TRUE(parsed.ok());
  std::string printed = PrintSystemSource(parsed->system);
  auto reparsed = ParseSpec(printed);
  ASSERT_TRUE(reparsed.ok())
      << reparsed.status().ToString() << "\nprinted:\n" << printed;
  EXPECT_EQ(PrintSystemSource(reparsed->system), printed);
  EXPECT_EQ(PrintSystem(reparsed->system), PrintSystem(parsed->system));
}

}  // namespace
}  // namespace has
