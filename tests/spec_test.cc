#include <gtest/gtest.h>

#include "model/validate.h"
#include "spec/lexer.h"
#include "spec/parser.h"
#include "spec/printer.h"

namespace has {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("task T { x <- y; a -> b; n <= 3.5 && !p }");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.front(), TokKind::kIdent);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokKind::kLArrow),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokKind::kArrow),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokKind::kLe),
            kinds.end());
  EXPECT_EQ(kinds.back(), TokKind::kEnd);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("a # comment\nb // another\nc");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 4u);  // a b c END
}

TEST(LexerTest, BadCharacterRejected) {
  EXPECT_FALSE(Tokenize("a $ b").ok());
}

constexpr char kTinySpec[] = R"(
system {
  relation R { v: num; }
  task Main {
    ids: x; nums: n;
    input: ;
    service go { pre: x == null; post: R(x, n) && n >= 0; }
  }
}
property p1 { G {x == null} }
property p2 { F svc(go) }
)";

TEST(ParserTest, ParsesTinySpec) {
  auto parsed = ParseSpec(kTinySpec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ValidateSystem(parsed->system).ok());
  EXPECT_EQ(parsed->system.num_tasks(), 1);
  EXPECT_EQ(parsed->properties.size(), 2u);
  ASSERT_NE(parsed->FindProperty("p1"), nullptr);
  EXPECT_TRUE(parsed->FindProperty("p1")->Validate(parsed->system).ok());
  EXPECT_TRUE(parsed->FindProperty("p2")->Validate(parsed->system).ok());
  EXPECT_EQ(parsed->FindProperty("zzz"), nullptr);
}

TEST(ParserTest, ConditionKinds) {
  DatabaseSchema schema;
  RelationId r = schema.AddRelation("R");
  schema.relation(r).AddNumericAttribute("v");
  VarScope scope;
  scope.AddVar("x", VarSort::kId);
  scope.AddVar("n", VarSort::kNumeric);
  auto c1 = ParseCondition("x != null && n == 3", scope, schema);
  ASSERT_TRUE(c1.ok()) << c1.status().ToString();
  EXPECT_TRUE((*c1)->CheckWellFormed(scope, schema).ok());
  auto c2 = ParseCondition("2*n - 1 <= n + 4", scope, schema);
  ASSERT_TRUE(c2.ok());
  EXPECT_TRUE((*c2)->UsesArithmetic());
  auto c3 = ParseCondition("R(x, n)", scope, schema);
  ASSERT_TRUE(c3.ok());
  EXPECT_EQ((*c3)->kind(), CondKind::kRel);
  // ID compared with a number is rejected.
  EXPECT_FALSE(ParseCondition("x == 3", scope, schema).ok());
  EXPECT_FALSE(ParseCondition("x <= x", scope, schema).ok());
}

TEST(ParserTest, NestedTasksAndMappings) {
  constexpr char spec[] = R"(
system {
  relation R { }
  task Root {
    ids: x; nums: amount;
    service init { pre: x == null; post: R(x); }
    task Sub {
      ids: sx; nums: flag;
      input: sx <- x;
      output: flag -> amount;
      open when x != null;
      close when flag == 1;
      service work { pre: true; post: flag == 1; }
    }
  }
}
)";
  auto parsed = ParseSpec(spec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ValidateSystem(parsed->system).ok());
  const Task& sub = parsed->system.task(1);
  EXPECT_EQ(sub.fin().size(), 1u);
  EXPECT_EQ(sub.fout().size(), 1u);
  EXPECT_EQ(parsed->system.Depth(), 2);
}

TEST(ParserTest, ChildFormulaNodes) {
  constexpr char spec[] = R"(
system {
  relation R { }
  task Root {
    ids: x;
    task Sub {
      ids: sx;
      input: sx <- x;
      open when x != null;
      close when true;
      service noop { pre: true; post: true; }
    }
    service init { pre: x == null; post: R(x); }
  }
}
property nested { G ( open(Sub) -> [ F {sx != null} ]@Sub ) }
)";
  auto parsed = ParseSpec(spec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const HltlProperty* p = parsed->FindProperty("nested");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->num_nodes(), 2);
  EXPECT_TRUE(p->Validate(parsed->system).ok());
  EXPECT_FALSE(PrintProperty(parsed->system, *p).empty());
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto bad = ParseSpec("system { task T { ids: x }");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line"), std::string::npos);
}

TEST(PrinterTest, SystemRoundTripsTextually) {
  auto parsed = ParseSpec(kTinySpec);
  ASSERT_TRUE(parsed.ok());
  std::string printed = PrintSystem(parsed->system);
  EXPECT_NE(printed.find("Main"), std::string::npos);
  EXPECT_NE(printed.find("go"), std::string::npos);
}

}  // namespace
}  // namespace has
