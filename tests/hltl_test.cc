#include <gtest/gtest.h>

#include "builders.h"
#include "hltl/assignments.h"

namespace has {
namespace {

HltlProperty ParentChildProperty(const ArtifactSystem& system) {
  // [ G(open(Child) -> [F flag==1]@Child) ]@Parent
  HltlProperty property;
  HltlNode root;
  root.task = system.root();
  HltlNode child;
  child.task = 1;
  LinearExpr e = LinearExpr::Var(1);
  e.AddConstant(Rational(-1));
  child.props.push_back(
      HltlProp::Cond(Condition::Arith(LinearConstraint{e, Relop::kEq})));
  child.skeleton = LtlFormula::Eventually(LtlFormula::Prop(0));
  // Assemble root-first.
  root.props.push_back(HltlProp::Service(ServiceRef::Opening(1)));
  root.props.push_back(HltlProp::Child(1));
  root.skeleton = LtlFormula::Always(LtlFormula::Implies(
      LtlFormula::Prop(0), LtlFormula::Prop(1)));
  property.AddNode(std::move(root));
  property.AddNode(std::move(child));
  return property;
}

TEST(HltlTest, ValidatesAgainstSystem) {
  ArtifactSystem system = testing::ParentChildSystem();
  HltlProperty property = ParentChildProperty(system);
  EXPECT_TRUE(property.Validate(system).ok());
  EXPECT_EQ(property.NodesOfTask(0), std::vector<int>{0});
  EXPECT_EQ(property.NodesOfTask(1), std::vector<int>{1});
}

TEST(HltlTest, RejectsNonChildReference) {
  ArtifactSystem system = testing::ParentChildSystem();
  HltlProperty property;
  HltlNode root;
  root.task = 0;
  root.props.push_back(HltlProp::Child(1));
  root.skeleton = LtlFormula::Prop(0);
  property.AddNode(std::move(root));
  HltlNode bogus;
  bogus.task = 0;  // same task: not a child of itself
  bogus.skeleton = LtlFormula::True();
  property.AddNode(std::move(bogus));
  EXPECT_FALSE(property.Validate(system).ok());
}

TEST(HltlTest, NegationOnlyTouchesRoot) {
  ArtifactSystem system = testing::ParentChildSystem();
  HltlProperty property = ParentChildProperty(system);
  HltlProperty negated = property.Negated();
  EXPECT_EQ(negated.node(0).skeleton->kind(), LtlKind::kNot);
  EXPECT_EQ(negated.node(1).skeleton->ToString(),
            property.node(1).skeleton->ToString());
}

TEST(TaskAutomataTest, PropInterningSharesTable) {
  ArtifactSystem system = testing::ParentChildSystem();
  HltlProperty property = ParentChildProperty(system);
  PropertyAutomata automata(&system, &property);
  TaskAutomata& parent = automata.ForTask(0);
  EXPECT_EQ(parent.phi_nodes().size(), 1u);
  EXPECT_EQ(parent.num_assignments(), 2);
  EXPECT_EQ(parent.AssignmentBit(0), 0);
  EXPECT_EQ(parent.AssignmentBit(1), -1);
  // Child formula + service props interned.
  EXPECT_EQ(parent.props().size(), 2u);
}

TEST(TaskAutomataTest, AutomataCachedPerAssignment) {
  ArtifactSystem system = testing::ParentChildSystem();
  HltlProperty property = ParentChildProperty(system);
  PropertyAutomata automata(&system, &property);
  TaskAutomata& child = automata.ForTask(1);
  const BuchiAutomaton& b1 = child.automaton(1);
  const BuchiAutomaton& b1_again = child.automaton(1);
  EXPECT_EQ(&b1, &b1_again);
  const BuchiAutomaton& b0 = child.automaton(0);
  EXPECT_NE(&b1, &b0);
  EXPECT_GT(b1.num_states(), 0);
}

TEST(TaskAutomataTest, AssignmentAutomatonAcceptsMatchingWords) {
  ArtifactSystem system = testing::ParentChildSystem();
  HltlProperty property = ParentChildProperty(system);
  PropertyAutomata automata(&system, &property);
  TaskAutomata& child = automata.ForTask(1);
  // β = 1: the node [F flag==1] must hold: finite word where prop 0
  // (the condition) eventually holds.
  const BuchiAutomaton& yes = child.automaton(1);
  EXPECT_TRUE(yes.AcceptsFinite({{false}, {true}}));
  EXPECT_FALSE(yes.AcceptsFinite({{false}, {false}}));
  // β = 0 is the negation.
  const BuchiAutomaton& no = child.automaton(0);
  EXPECT_FALSE(no.AcceptsFinite({{false}, {true}}));
  EXPECT_TRUE(no.AcceptsFinite({{false}, {false}}));
}

}  // namespace
}  // namespace has
