#include <gtest/gtest.h>

#include "data/instance.h"
#include "expr/condition.h"
#include "expr/eval.h"

namespace has {
namespace {

struct Fixture {
  DatabaseSchema schema;
  VarScope scope;
  RelationId hotels, flights;
  int flight_id, hotel_id, price;

  Fixture() {
    hotels = schema.AddRelation("HOTELS");
    flights = schema.AddRelation("FLIGHTS");
    schema.relation(hotels).AddNumericAttribute("unit_price");
    schema.relation(flights).AddNumericAttribute("price");
    schema.relation(flights).AddForeignKey("comp", hotels);
    flight_id = scope.AddVar("flight_id", VarSort::kId);
    hotel_id = scope.AddVar("hotel_id", VarSort::kId);
    price = scope.AddVar("price", VarSort::kNumeric);
  }
};

TEST(ConditionTest, WellFormedness) {
  Fixture f;
  CondPtr ok = Condition::And(
      Condition::IsNull(f.flight_id),
      Condition::Rel(f.flights, {f.flight_id, f.price, f.hotel_id}));
  EXPECT_TRUE(ok->CheckWellFormed(f.scope, f.schema).ok());
  // ID compared with numeric is rejected.
  CondPtr bad = Condition::VarEq(f.flight_id, f.price);
  EXPECT_FALSE(bad->CheckWellFormed(f.scope, f.schema).ok());
  // Wrong arity rejected.
  CondPtr bad2 = Condition::Rel(f.flights, {f.flight_id});
  EXPECT_FALSE(bad2->CheckWellFormed(f.scope, f.schema).ok());
}

TEST(ConditionTest, AtomCollectionDeduplicates) {
  Fixture f;
  CondPtr c = Condition::Or(Condition::IsNull(f.flight_id),
                            Condition::Not(Condition::IsNull(f.flight_id)));
  std::vector<const Condition*> atoms;
  c->CollectAtoms(&atoms);
  EXPECT_EQ(atoms.size(), 1u);
}

TEST(ConditionTest, StructuralEqualityAndHash) {
  Fixture f;
  CondPtr a = Condition::VarEq(f.flight_id, f.hotel_id);
  CondPtr b = Condition::VarEq(f.flight_id, f.hotel_id);
  CondPtr c = Condition::VarEq(f.hotel_id, f.flight_id);
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_EQ(a->Hash(), b->Hash());
  EXPECT_FALSE(a->Equals(*c));
}

TEST(ConditionTest, MapVars) {
  Fixture f;
  CondPtr c = Condition::VarEq(f.flight_id, f.hotel_id);
  CondPtr mapped = c->MapVars({f.hotel_id, f.flight_id, f.price});
  EXPECT_TRUE(mapped->Equals(*Condition::VarEq(f.hotel_id, f.flight_id)));
}

TEST(ConditionTest, UsesArithmeticDetection) {
  Fixture f;
  LinearExpr tag = LinearExpr::Var(f.price);
  tag.AddConstant(Rational(-1));
  // price == 1 (constant tag): not "real" arithmetic.
  EXPECT_FALSE(Condition::Arith(LinearConstraint{tag, Relop::kEq})
                   ->UsesArithmetic());
  EXPECT_TRUE(Condition::Arith(LinearConstraint{tag, Relop::kLe})
                  ->UsesArithmetic());
}

TEST(EvalTest, EqualityAndNull) {
  Fixture f;
  DatabaseInstance db(&f.schema);
  Valuation nu(3);
  nu[f.flight_id] = Value::Null();
  nu[f.hotel_id] = Value::Id(f.hotels, 1);
  nu[f.price] = Value::Real(5);
  EXPECT_TRUE(EvalCondition(*Condition::IsNull(f.flight_id), db, nu));
  EXPECT_FALSE(EvalCondition(*Condition::IsNull(f.hotel_id), db, nu));
  EXPECT_FALSE(
      EvalCondition(*Condition::VarEq(f.flight_id, f.hotel_id), db, nu));
}

TEST(EvalTest, RelationAtomSemantics) {
  Fixture f;
  DatabaseInstance db(&f.schema);
  ASSERT_TRUE(db.Insert(f.hotels, {Value::Id(f.hotels, 1), Value::Real(80)})
                  .ok());
  ASSERT_TRUE(db.Insert(f.flights, {Value::Id(f.flights, 7), Value::Real(5),
                                    Value::Id(f.hotels, 1)})
                  .ok());
  CondPtr atom =
      Condition::Rel(f.flights, {f.flight_id, f.price, f.hotel_id});
  Valuation nu(3);
  nu[f.flight_id] = Value::Id(f.flights, 7);
  nu[f.price] = Value::Real(5);
  nu[f.hotel_id] = Value::Id(f.hotels, 1);
  EXPECT_TRUE(EvalCondition(*atom, db, nu));
  nu[f.price] = Value::Real(6);
  EXPECT_FALSE(EvalCondition(*atom, db, nu));
  // Null argument makes the atom false (paper semantics).
  nu[f.price] = Value::Real(5);
  nu[f.hotel_id] = Value::Null();
  EXPECT_FALSE(EvalCondition(*atom, db, nu));
}

TEST(EvalTest, ArithmeticAtoms) {
  Fixture f;
  DatabaseInstance db(&f.schema);
  Valuation nu(3);
  nu[f.flight_id] = Value::Null();
  nu[f.hotel_id] = Value::Null();
  nu[f.price] = Value::Real(4);
  LinearExpr e = LinearExpr::Var(f.price);
  e.AddConstant(Rational(-5));  // price - 5
  EXPECT_TRUE(
      EvalCondition(*Condition::Arith(LinearConstraint{e, Relop::kLt}), db,
                    nu));
  EXPECT_FALSE(
      EvalCondition(*Condition::Arith(LinearConstraint{e, Relop::kEq}), db,
                    nu));
  // Boolean structure.
  CondPtr both = Condition::And(
      Condition::Arith(LinearConstraint{e, Relop::kLt}),
      Condition::Not(Condition::Arith(LinearConstraint{e, Relop::kEq})));
  EXPECT_TRUE(EvalCondition(*both, db, nu));
}

}  // namespace
}  // namespace has
