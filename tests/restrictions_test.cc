// Coverage of the eight decidability restrictions of Section 6: the
// statically checkable ones are rejected by the validator; the
// operational ones are enforced by the run semantics (CheckRunTree) and
// by the symbolic successor relation.
#include <gtest/gtest.h>

#include "builders.h"
#include "core/successor.h"
#include "model/validate.h"
#include "runs/run_tree.h"

namespace has {
namespace {

// Restriction 1: only input parameters propagate across internal
// transitions — non-input variables of the symbolic successor are
// unconstrained unless the post-condition pins them.
TEST(Restrictions, R1_OnlyInputsPropagate) {
  ArtifactSystem system = testing::FlatSystem(false);
  VerifierOptions options;
  TaskContext ctx(&system, nullptr, 0, options, nullptr);
  PartialIsoType start(&system.schema(), &system.task(0).vars(),
                       options.max_nav_depth);
  // x non-null before drop; after drop x must be null (post), and no
  // residue of the old anchoring may survive.
  ASSERT_TRUE(start.DecideAtom(*Condition::IsNull(0), false));
  ASSERT_TRUE(start.DecideAtom(*Condition::IsNull(1), false));
  SymbolicConfig cur{start, Cell()};
  bool truncated = false;
  std::vector<InternalSuccessor> succs =
      EnumerateInternal(ctx, cur, system.task(0).service(1), &truncated);
  ASSERT_FALSE(succs.empty());
  for (const InternalSuccessor& s : succs) {
    EXPECT_TRUE(s.next.iso.VarIsNull(0));
    EXPECT_TRUE(s.next.iso.VarIsNull(1));
  }
}

// Restriction 2: a child may overwrite only null ID variables of the
// parent.
TEST(Restrictions, R2_OnlyNullIdTargetsOverwritten) {
  ArtifactSystem system;
  system.schema().AddRelation("R");
  TaskId root = system.AddTask("Root", kNoTask);
  int rx = system.task(root).vars().AddVar("rx", VarSort::kId);
  TaskId child_id = system.AddTask("Child", root);
  Task& child = system.task(child_id);
  int cx = child.vars().AddVar("cx", VarSort::kId);
  child.AddOutput(rx, cx);
  child.SetOpeningPre(Condition::True());
  child.SetClosingPre(Condition::True());
  ASSERT_TRUE(ValidateSystem(system).ok());
  VerifierOptions options;
  TaskContext pctx(&system, nullptr, root, options, nullptr);
  TaskContext cctx(&system, nullptr, child_id, options, nullptr);
  // Parent rx non-null: the child's returned value must be DISCARDED.
  PartialIsoType piso(&system.schema(), &system.task(root).vars(),
                      options.max_nav_depth);
  ASSERT_TRUE(piso.DecideAtom(*Condition::IsNull(rx), false));
  PartialIsoType out(&system.schema(), &child.vars(),
                     options.max_nav_depth);
  ASSERT_TRUE(out.DecideAtom(*Condition::IsNull(cx), true));
  bool truncated = false;
  std::vector<SymbolicConfig> nexts = ApplyChildReturn(
      pctx, cctx, SymbolicConfig{piso, Cell()}, out, Cell(), &truncated);
  ASSERT_FALSE(nexts.empty());
  for (const SymbolicConfig& s : nexts) {
    EXPECT_FALSE(s.iso.VarIsNull(rx)) << "non-null target was overwritten";
  }
}

// Restriction 3: return targets disjoint from the parent's input
// variables (statically checked).
TEST(Restrictions, R3_ReturnIntoInputRejected) {
  ArtifactSystem system;
  system.schema().AddRelation("R");
  TaskId root = system.AddTask("Root", kNoTask);
  int rx = system.task(root).vars().AddVar("rx", VarSort::kId);
  system.task(root).AddInput(rx, -1);
  TaskId child = system.AddTask("Child", root);
  int cx = system.task(child).vars().AddVar("cx", VarSort::kId);
  system.task(child).AddOutput(rx, cx);
  EXPECT_FALSE(ValidateSystem(system).ok());
}

// Restriction 4: internal transitions require all active subtasks to
// have returned — enforced by the run-tree checker.
TEST(Restrictions, R4_InternalWithActiveChildRejected) {
  ArtifactSystem system = testing::ParentChildSystem();
  DatabaseSchema& schema = system.schema();
  DatabaseInstance db(&schema);
  ASSERT_TRUE(db.Insert(0, {Value::Id(0, 1)}).ok());
  RunTree tree;
  LocalRun parent;
  parent.task = 0;
  parent.input = Valuation(2);
  Valuation nu0 = OpeningValuation(system.task(0), parent.input);
  parent.steps.push_back(RunStep{ServiceRef::Opening(0), nu0, {}, -1});
  // pick: x := R(1)
  Valuation nu1 = nu0;
  nu1[0] = Value::Id(0, 1);
  parent.steps.push_back(RunStep{ServiceRef::Internal(0, 0), nu1, {}, -1});
  // open child, then fire an internal service while the child is open.
  LocalRun child;
  child.task = 1;
  child.input = Valuation(2);
  child.input[0] = Value::Id(0, 1);
  Valuation cnu = OpeningValuation(system.task(1), child.input);
  child.steps.push_back(RunStep{ServiceRef::Opening(1), cnu, {}, -1});
  child.returning = false;
  int child_node = 1;
  parent.steps.push_back(RunStep{ServiceRef::Opening(1), nu1, {},
                                 child_node});
  Valuation nu2 = nu1;
  nu2[0] = Value::Id(0, 1);
  parent.steps.push_back(RunStep{ServiceRef::Internal(0, 0), nu2, {}, -1});
  tree.runs.push_back(parent);
  tree.runs.push_back(child);
  Status s = CheckRunTree(system, db, tree);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("restriction 4"), std::string::npos);
}

// Restrictions 5 and 7, per-relation form: each relation S_T,i has a
// FIXED tuple (re-declaring a name replaces its tuple in place rather
// than growing the family) and every set update targets a declared
// relation through its index.
TEST(Restrictions, R5_R7_PerRelationFixedTuple) {
  ArtifactSystem system = testing::FlatSystem(true);
  EXPECT_TRUE(system.task(0).has_set());
  EXPECT_EQ(system.task(0).num_set_relations(), 1);
  EXPECT_EQ(system.task(0).set_vars().size(), 1u);
  // Re-declaring the default relation replaces its tuple in place.
  system.task(0).DeclareSet({0, 1});
  EXPECT_EQ(system.task(0).num_set_relations(), 1);
  EXPECT_EQ(system.task(0).set_vars().size(), 2u);
  // A second NAMED relation genuinely extends the family.
  int r = system.task(0).AddSetRelation("Aux", {1});
  EXPECT_EQ(r, 1);
  EXPECT_EQ(system.task(0).num_set_relations(), 2);
  EXPECT_EQ(system.task(0).FindSetRelation("Aux"), 1);
}

// Per-relation validation (generalized restrictions 5/7): every
// relation of the family is checked on its own.
TEST(Restrictions, PerRelationValidationErrors) {
  {
    // Arity 0.
    ArtifactSystem system = testing::FlatSystem(false);
    system.task(0).AddSetRelation("Empty", {});
    EXPECT_FALSE(ValidateSystem(system).ok());
  }
  {
    // Repeated ID variable within one relation's tuple.
    ArtifactSystem system = testing::FlatSystem(false);
    system.task(0).AddSetRelation("Dup", {0, 0});
    EXPECT_FALSE(ValidateSystem(system).ok());
  }
  {
    // A numeric variable in a SECOND relation (the first is fine).
    ArtifactSystem system = testing::FlatSystem(true);
    Task& t = system.task(0);
    int n = t.vars().AddVar("n", VarSort::kNumeric);
    t.AddSetRelation("Nums", {n});
    EXPECT_FALSE(ValidateSystem(system).ok());
  }
  {
    // Update targeting an undeclared relation index.
    ArtifactSystem system = testing::FlatSystem(true);
    InternalService bad;
    bad.name = "bad";
    bad.pre = Condition::True();
    bad.post = Condition::True();
    bad.MarkInsert(/*rel=*/1);  // only relation 0 exists
    system.task(0).AddInternalService(std::move(bad));
    EXPECT_FALSE(ValidateSystem(system).ok());
  }
  {
    // Duplicate update of one relation in a single service delta.
    ArtifactSystem system = testing::FlatSystem(true);
    InternalService bad;
    bad.name = "bad";
    bad.pre = Condition::True();
    bad.post = Condition::True();
    bad.insert_rels = {0, 0};
    system.task(0).AddInternalService(std::move(bad));
    EXPECT_FALSE(ValidateSystem(system).ok());
  }
  {
    // A well-formed TWO-relation task validates.
    ArtifactSystem system = testing::FlatSystem(true);
    Task& t = system.task(0);
    t.AddSetRelation("Aux", {1});
    InternalService move;
    move.name = "move";
    move.pre = Condition::True();
    move.post = Condition::True();
    move.MarkRetrieve(0);
    move.MarkInsert(1);
    t.AddInternalService(std::move(move));
    EXPECT_TRUE(ValidateSystem(system).ok())
        << ValidateSystem(system).ToString();
  }
}

// Restriction 6: the artifact relation resets when a task (re)opens —
// opening configurations always carry an empty set (S_0 = ∅,
// Definition 9) and the product's counters start at 0̄.
TEST(Restrictions, R6_SetResetsOnOpen) {
  ArtifactSystem system = testing::FlatSystem(true);
  Valuation input(2);
  Valuation nu = OpeningValuation(system.task(0), input);
  RunTree tree;
  LocalRun run;
  run.task = 0;
  run.input = input;
  SetContents nonempty;
  nonempty.insert({Value::Id(1, 1)});
  run.steps.push_back(
      RunStep{ServiceRef::Opening(0), nu, TaskSets{nonempty}, -1});
  tree.runs.push_back(run);
  DatabaseInstance db(&system.schema());
  EXPECT_FALSE(CheckRunTree(system, db, tree).ok());
}

// Restriction 8: each subtask opens at most once per segment.
TEST(Restrictions, R8_DoubleOpenRejected) {
  ArtifactSystem system = testing::ParentChildSystem();
  DatabaseInstance db(&system.schema());
  ASSERT_TRUE(db.Insert(0, {Value::Id(0, 1)}).ok());
  RunTree tree;
  LocalRun parent;
  parent.task = 0;
  parent.input = Valuation(2);
  Valuation nu0 = OpeningValuation(system.task(0), parent.input);
  parent.steps.push_back(RunStep{ServiceRef::Opening(0), nu0, {}, -1});
  Valuation nu1 = nu0;
  nu1[0] = Value::Id(0, 1);
  parent.steps.push_back(RunStep{ServiceRef::Internal(0, 0), nu1, {}, -1});
  // Child opens, returns, then opens AGAIN in the same segment.
  LocalRun child;
  child.task = 1;
  child.input = Valuation(2);
  child.input[0] = Value::Id(0, 1);
  Valuation cnu = OpeningValuation(system.task(1), child.input);
  child.steps.push_back(RunStep{ServiceRef::Opening(1), cnu, {}, -1});
  Valuation cnu1 = cnu;
  cnu1[1] = Value::Real(1);
  child.steps.push_back(RunStep{ServiceRef::Internal(1, 0), cnu1, {}, -1});
  child.steps.push_back(RunStep{ServiceRef::Closing(1), cnu1, {}, -1});
  child.returning = true;
  child.output = cnu1;
  tree.runs.push_back(parent);
  tree.runs.push_back(child);
  tree.runs.push_back(child);  // second identical call
  LocalRun& p = tree.runs[0];
  p.steps.push_back(RunStep{ServiceRef::Opening(1), nu1, {}, 1});
  Valuation nu2 = nu1;
  nu2[1] = Value::Real(1);
  p.steps.push_back(RunStep{ServiceRef::Closing(1), nu2, {}, -1});
  p.steps.push_back(RunStep{ServiceRef::Opening(1), nu2, {}, 2});
  Status s = CheckRunTree(system, db, tree);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("restriction 8"), std::string::npos);
}

}  // namespace
}  // namespace has
