// Tests for the spec fuzzer layer (src/fuzz/): generator determinism
// and validity, property-source round-trips, the metamorphic property
// algebra, the differential driver, and the delta-debugging shrinker's
// contract — the result parses and validates, the predicate holds at
// EVERY accepted step, and shrinking is a fixpoint.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/verifier.h"
#include "fuzz/differential.h"
#include "fuzz/generator.h"
#include "fuzz/metamorphic.h"
#include "fuzz/shrink.h"
#include "model/validate.h"
#include "spec/parser.h"
#include "spec/printer.h"

namespace has {
namespace {

// --------------------------------------------------------------- generator

TEST(Generator, SameSeedSameSource) {
  for (uint64_t seed : {1ULL, 7ULL, 42ULL, 1234567ULL}) {
    StatusOr<GeneratedSpec> a = GenerateSpec(seed);
    StatusOr<GeneratedSpec> b = GenerateSpec(seed);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->source, b->source) << "seed " << seed;
  }
}

TEST(Generator, DifferentSeedsDiverge) {
  std::set<std::string> sources;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    StatusOr<GeneratedSpec> g = GenerateSpec(seed);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    sources.insert(g->source);
  }
  // Distinct seeds must not collapse to a handful of skeletons.
  EXPECT_GE(sources.size(), 15u);
}

TEST(Generator, SweepIsValidAndRoundTripStable) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    StatusOr<GeneratedSpec> g = GenerateSpec(seed);
    ASSERT_TRUE(g.ok()) << "seed " << seed << ": "
                        << g.status().ToString();
    StatusOr<ParsedSpec> parsed = ParseSpec(g->source);
    ASSERT_TRUE(parsed.ok()) << "seed " << seed << ": "
                             << parsed.status().ToString();
    Status valid = ValidateSystem(parsed->system);
    EXPECT_TRUE(valid.ok()) << "seed " << seed << ": " << valid.ToString();
    for (const auto& [name, property] : parsed->properties) {
      Status pv = property.Validate(parsed->system);
      EXPECT_TRUE(pv.ok()) << "seed " << seed << " property " << name
                           << ": " << pv.ToString();
    }
    // The generator emits the print -> parse -> print fixpoint.
    EXPECT_EQ(PrintSpecSource(parsed->system, parsed->properties),
              g->source)
        << "seed " << seed;
  }
}

// ------------------------------------------------------ property printing

TEST(PropertyPrinter, RoundTripsThroughParser) {
  constexpr char kSpec[] = R"(
system {
  relation R { }
  task Main {
    ids: x, y;
    nums: n;
    set P (x);
    service store { pre: x != null; post: true; insert into P; }
    task Child {
      ids: cx;
      input: cx <- x;
      open when x != null;
      close when cx == null;
      service go { pre: true; post: true; }
    }
  }
}
property p {
  G ({x == null} || ! [ F svc(go) ]@Child) && (svc(store) U {n == 3})
}
)";
  StatusOr<ParsedSpec> parsed = ParseSpec(kSpec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::string printed = PrintSpecSource(parsed->system, parsed->properties);
  StatusOr<ParsedSpec> again = ParseSpec(printed);
  ASSERT_TRUE(again.ok()) << "printed source rejected:\n"
                          << printed << "\n"
                          << again.status().ToString();
  // The print of the re-parse is the fixpoint.
  EXPECT_EQ(PrintSpecSource(again->system, again->properties), printed);
}

// ------------------------------------------------------------ metamorphic

constexpr char kLiveSpec[] = R"(
system {
  relation R { }
  task Main {
    ids: x;
    set P (x);
    service bind { pre: x == null; post: R(x); }
    service store { pre: x != null; post: true; insert into P; }
    service load { pre: true; post: x != null; retrieve from P; }
  }
}
property no_load { G ! svc(load) }
property eventually_bound { F ! {x == null} }
)";

TEST(Metamorphic, ConstantPropertiesMatchRunSetExistence) {
  StatusOr<ParsedSpec> parsed = ParseSpec(kLiveSpec);
  ASSERT_TRUE(parsed.ok());
  // The system is live (bind always fireable from the initial state),
  // so runs exist: V(true) = HOLDS, V(false) = VIOLATED.
  HltlProperty t = ConstantProperty(parsed->system, true);
  HltlProperty f = ConstantProperty(parsed->system, false);
  ASSERT_TRUE(t.Validate(parsed->system).ok());
  ASSERT_TRUE(f.Validate(parsed->system).ok());
  EXPECT_EQ(Verify(parsed->system, t).verdict, Verdict::kHolds);
  EXPECT_EQ(Verify(parsed->system, f).verdict, Verdict::kViolated);
}

TEST(Metamorphic, CombinePreservesValidationAndSemantics) {
  StatusOr<ParsedSpec> parsed = ParseSpec(kLiveSpec);
  ASSERT_TRUE(parsed.ok());
  const HltlProperty& a = parsed->properties[0].second;
  const HltlProperty& b = parsed->properties[1].second;
  HltlProperty conj = CombineProperties(a, b, /*conjunction=*/true);
  HltlProperty disj = CombineProperties(a, b, /*conjunction=*/false);
  ASSERT_TRUE(conj.Validate(parsed->system).ok())
      << conj.Validate(parsed->system).ToString();
  ASSERT_TRUE(disj.Validate(parsed->system).ok());
  Verdict va = Verify(parsed->system, a).verdict;
  Verdict vb = Verify(parsed->system, b).verdict;
  Verdict vand = Verify(parsed->system, conj).verdict;
  Verdict vor = Verify(parsed->system, disj).verdict;
  EXPECT_EQ(vand == Verdict::kHolds,
            va == Verdict::kHolds && vb == Verdict::kHolds);
  if (va == Verdict::kHolds || vb == Verdict::kHolds) {
    EXPECT_EQ(vor, Verdict::kHolds);
  }
}

TEST(Metamorphic, CombineMergesChildFormulaNodes) {
  constexpr char kHier[] = R"(
system {
  task Main {
    ids: x;
    service go { pre: true; post: true; }
    task Sub {
      ids: sx;
      input: sx <- x;
      open when true;
      close when sx == null;
      service step { pre: true; post: true; }
    }
  }
}
property pa { G ! [ F svc(step) ]@Sub }
property pb { F [ svc(step) U {sx == null} ]@Sub }
)";
  StatusOr<ParsedSpec> parsed = ParseSpec(kHier);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const HltlProperty& a = parsed->properties[0].second;
  const HltlProperty& b = parsed->properties[1].second;
  HltlProperty conj = CombineProperties(a, b, true);
  // Both child nodes survive the merge and the result validates.
  EXPECT_EQ(conj.num_nodes(), a.num_nodes() + b.num_nodes() - 1);
  ASSERT_TRUE(conj.Validate(parsed->system).ok())
      << conj.Validate(parsed->system).ToString();
  EXPECT_NE(Verify(parsed->system, conj).verdict, Verdict::kInconclusive);
}

TEST(Metamorphic, AlgebraHoldsOnHandWrittenSpec) {
  StatusOr<ParsedSpec> parsed = ParseSpec(kLiveSpec);
  ASSERT_TRUE(parsed.ok());
  std::vector<std::pair<std::string, const HltlProperty*>> props;
  for (const auto& [name, p] : parsed->properties) {
    props.emplace_back(name, &p);
  }
  AlgebraReport report =
      CheckPropertyAlgebra(parsed->system, props, VerifierOptions{});
  EXPECT_TRUE(report.ok()) << report.findings.front().relation << ": "
                           << report.findings.front().detail;
  EXPECT_GT(report.relations_checked, 0);
}

// ----------------------------------------------------------- differential

TEST(Differential, NoHardFindingOnCrossValidatedSpec) {
  StatusOr<ParsedSpec> parsed = ParseSpec(kLiveSpec);
  ASSERT_TRUE(parsed.ok());
  for (const auto& [name, property] : parsed->properties) {
    DiffReport report = RunDifferential(parsed->system, property);
    // Soft kinds (suspect/missing witness) are legitimate here — e.g.
    // `F !{x == null}` HOLDS symbolically while the zero-step finite
    // prefix satisfies its negation — but hard mismatches and default
    // disagreements are not.
    EXPECT_NE(report.kind, DiffReport::Kind::kSymbolicMismatch)
        << name << ": " << report.detail;
    EXPECT_NE(report.kind, DiffReport::Kind::kConcreteMismatch)
        << name << ": " << report.detail;
    EXPECT_FALSE(IsDisagreement(report, DiffOptions{}))
        << name << ": " << DiffKindName(report.kind) << "\n"
        << report.detail;
  }
}

TEST(Differential, ViolatedVerdictConfirmedByWitness) {
  // `G !svc(bind)` is refuted by any run that fires bind — the only
  // service enabled initially — so every leg agrees: all symbolic
  // configs say VIOLATED and the bounded search finds a witness. The
  // post binds x through a relation atom so the concrete side can pick
  // an ID from the instance's active domain (a bare `x != null` post
  // is concretely unsatisfiable when the schema is empty).
  constexpr char kSpec[] = R"(
system {
  relation R { }
  task Main {
    ids: x;
    service bind { pre: x == null; post: R(x); }
    service step { pre: x != null; post: true; }
  }
}
property never_bind { G ! svc(bind) }
)";
  StatusOr<ParsedSpec> parsed = ParseSpec(kSpec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const HltlProperty& p = parsed->properties[0].second;
  DiffReport report = RunDifferential(parsed->system, p);
  EXPECT_EQ(report.kind, DiffReport::Kind::kAgreed) << report.detail;
  EXPECT_EQ(report.verdict, Verdict::kViolated);
  EXPECT_TRUE(report.witness_found);
}

TEST(Differential, DeadlockedSystemYieldsSuspectWitnessNotMismatch) {
  // The engine's run set excludes deadlocked prefixes: a root whose
  // only service can never fire has NO runs, every verdict is
  // vacuously HOLDS, and the concrete finite tree satisfying the
  // negation must be classified as the SOFT suspect-witness kind (see
  // fuzz/differential.h).
  constexpr char kDeadlocked[] = R"(
system {
  task Main {
    ids: x;
    input: x;
    service stuck { pre: false; post: true; }
  }
}
property ev { (true U svc(stuck)) }
)";
  StatusOr<ParsedSpec> parsed = ParseSpec(kDeadlocked);
  ASSERT_TRUE(parsed.ok());
  const HltlProperty& p = parsed->properties[0].second;
  DiffReport report = RunDifferential(parsed->system, p);
  EXPECT_EQ(report.kind, DiffReport::Kind::kSuspectWitness)
      << report.detail;
  // The vacuity probe explains it.
  EXPECT_NE(report.detail.find("empty run set"), std::string::npos)
      << report.detail;
  DiffOptions options;
  EXPECT_FALSE(IsDisagreement(report, options));
  options.strict_witness = true;
  EXPECT_TRUE(IsDisagreement(report, options));
}

// --------------------------------------------------------------- shrinker

/// Predicate used by the shrinker tests: the spec declares a service
/// named "keep" somewhere.
bool HasKeepService(const ParsedSpec& spec) {
  for (TaskId t = 0; t < static_cast<TaskId>(spec.system.num_tasks());
       ++t) {
    for (const auto& svc : spec.system.task(t).services()) {
      if (svc.name == "keep") return true;
    }
  }
  return false;
}

constexpr char kShrinkable[] = R"(
system {
  relation R { a: num; }
  relation Unused { b: num; }
  task Main {
    ids: x, y;
    nums: n;
    set P (x);
    set Q (y);
    input: x;
    service keep { pre: x != null; post: true; insert into P; }
    service drop1 { pre: true; post: n == 3; }
    service drop2 { pre: R(x, n); post: true; insert into Q; }
    task Side {
      ids: sx;
      input: sx <- y;
      open when y != null;
      close when sx == null;
      service s { pre: true; post: true; }
    }
  }
}
property p1 { G {x == null} }
property p2 { F svc(drop1) }
)";

TEST(Shrinker, ResultParsesValidatesAndKeepsPredicate) {
  ShrinkStats stats;
  StatusOr<std::string> minimal =
      ShrinkSpec(kShrinkable, HasKeepService, ShrinkOptions{}, &stats);
  ASSERT_TRUE(minimal.ok()) << minimal.status().ToString();
  EXPECT_GT(stats.accepted, 0);
  StatusOr<ParsedSpec> parsed = ParseSpec(*minimal);
  ASSERT_TRUE(parsed.ok()) << *minimal;
  EXPECT_TRUE(ValidateSystem(parsed->system).ok());
  for (const auto& [name, property] : parsed->properties) {
    EXPECT_TRUE(property.Validate(parsed->system).ok());
  }
  EXPECT_TRUE(HasKeepService(*parsed));
  // The throwaway structure is gone.
  EXPECT_EQ(parsed->system.num_tasks(), 1);
  EXPECT_EQ(parsed->properties.size(), 1u);
}

TEST(Shrinker, PredicateHoldsAtEveryAcceptedStep) {
  int observed = 0;
  ShrinkStats stats;
  StatusOr<std::string> minimal = ShrinkSpec(
      kShrinkable, HasKeepService, ShrinkOptions{}, &stats,
      [&observed](const ParsedSpec& spec, const std::string& source) {
        ++observed;
        // Every accepted intermediate is itself a valid, committable
        // spec satisfying the predicate.
        EXPECT_TRUE(HasKeepService(spec));
        EXPECT_TRUE(ValidateSystem(spec.system).ok());
        StatusOr<ParsedSpec> reparsed = ParseSpec(source);
        EXPECT_TRUE(reparsed.ok());
      });
  ASSERT_TRUE(minimal.ok());
  EXPECT_EQ(observed, stats.accepted);
}

TEST(Shrinker, ShrinkingIsAFixpoint) {
  StatusOr<std::string> once =
      ShrinkSpec(kShrinkable, HasKeepService);
  ASSERT_TRUE(once.ok());
  ShrinkStats stats;
  StatusOr<std::string> twice =
      ShrinkSpec(*once, HasKeepService, ShrinkOptions{}, &stats);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(*twice, *once);
  EXPECT_EQ(stats.accepted, 0);
}

TEST(Shrinker, RejectsInputsThatFailThePredicate) {
  StatusOr<std::string> result = ShrinkSpec(
      kShrinkable, [](const ParsedSpec&) { return false; });
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace has
