#include <gtest/gtest.h>

#include "builders.h"
#include "core/verifier.h"

namespace has {
namespace {

TEST(VerifierTest, SafetyViolationFound) {
  // G(x == null) is violated: pick anchors x.
  ArtifactSystem system = testing::FlatSystem(false);
  HltlProperty property =
      testing::AlwaysProperty(0, Condition::IsNull(0));
  VerifyResult result = Verify(system, property);
  EXPECT_EQ(result.verdict, Verdict::kViolated);
  EXPECT_FALSE(result.counterexample.empty());
}

TEST(VerifierTest, TrivialInvariantHolds) {
  // G(x == null || x != null) holds.
  ArtifactSystem system = testing::FlatSystem(false);
  HltlProperty property = testing::AlwaysProperty(
      0, Condition::Or(Condition::IsNull(0),
                       Condition::Not(Condition::IsNull(0))));
  VerifyResult result = Verify(system, property);
  EXPECT_EQ(result.verdict, Verdict::kHolds);
}

TEST(VerifierTest, SequencingInvariantHolds) {
  // pick requires x null and establishes R(x,y): so x != null after any
  // pick; the invariant G(svc(pick) -> x != null) holds.
  ArtifactSystem system = testing::FlatSystem(false);
  HltlProperty property;
  HltlNode node;
  node.task = 0;
  node.props.push_back(HltlProp::Service(ServiceRef::Internal(0, 0)));
  node.props.push_back(
      HltlProp::Cond(Condition::Not(Condition::IsNull(0))));
  node.skeleton = LtlFormula::Always(
      LtlFormula::Implies(LtlFormula::Prop(0), LtlFormula::Prop(1)));
  property.AddNode(std::move(node));
  VerifyResult result = Verify(system, property);
  EXPECT_EQ(result.verdict, Verdict::kHolds);
}

TEST(VerifierTest, HierarchicalPropertyHolds) {
  // Child closes only with flag == 1, so
  // G(open(Child) -> [F flag == 1]@Child) holds... note the child might
  // also never return; its local run still eventually sets flag == 1
  // because `work` is its only service? No: the child can idle forever
  // only by taking no transition — not a run. But it can loop `work`
  // forever without flag? work's post forces flag == 1. So every step
  // after the first work satisfies it; a run that never works... has no
  // transitions at all and is not a valid infinite run. Property holds.
  ArtifactSystem system = testing::ParentChildSystem();
  HltlProperty property;
  HltlNode root;
  root.task = 0;
  HltlNode child;
  child.task = 1;
  LinearExpr e = LinearExpr::Var(1);
  e.AddConstant(Rational(-1));
  child.props.push_back(
      HltlProp::Cond(Condition::Arith(LinearConstraint{e, Relop::kEq})));
  child.skeleton = LtlFormula::Eventually(LtlFormula::Prop(0));
  root.props.push_back(HltlProp::Service(ServiceRef::Opening(1)));
  root.props.push_back(HltlProp::Child(1));
  root.skeleton = LtlFormula::Always(
      LtlFormula::Implies(LtlFormula::Prop(0), LtlFormula::Prop(1)));
  property.AddNode(std::move(root));
  property.AddNode(std::move(child));
  VerifyResult result = Verify(system, property);
  EXPECT_EQ(result.verdict, Verdict::kHolds);
}

TEST(VerifierTest, HierarchicalViolationFound) {
  // The child CAN return flag==1 into `got`, so claiming got stays 0
  // forever fails.
  ArtifactSystem system = testing::ParentChildSystem();
  LinearExpr e = LinearExpr::Var(1);  // got
  e.AddConstant(Rational(0));
  HltlProperty property = testing::AlwaysProperty(
      0, Condition::Arith(LinearConstraint{e, Relop::kEq}));
  VerifyResult result = Verify(system, property);
  EXPECT_EQ(result.verdict, Verdict::kViolated);
}

TEST(VerifierTest, SetRetrievalGatedByInsertions) {
  // In the set system, `drop` retrieves; claiming drop never happens is
  // violated only through a preceding insert — the counterexample must
  // contain a pick before the drop.
  ArtifactSystem system = testing::FlatSystem(true);
  HltlProperty property;
  HltlNode node;
  node.task = 0;
  node.props.push_back(HltlProp::Service(ServiceRef::Internal(0, 1)));
  node.skeleton =
      LtlFormula::Always(LtlFormula::Not(LtlFormula::Prop(0)));
  property.AddNode(std::move(node));
  VerifyResult result = Verify(system, property);
  ASSERT_EQ(result.verdict, Verdict::kViolated);
  // The witness mentions pick before drop.
  size_t pick_pos = result.counterexample.find("pick");
  size_t drop_pos = result.counterexample.find("drop");
  ASSERT_NE(pick_pos, std::string::npos);
  ASSERT_NE(drop_pos, std::string::npos);
  EXPECT_LT(pick_pos, drop_pos);
}

TEST(VerifierTest, StatsPopulated) {
  ArtifactSystem system = testing::FlatSystem(false);
  HltlProperty property =
      testing::AlwaysProperty(0, Condition::IsNull(0));
  VerifyResult result = Verify(system, property);
  EXPECT_GE(result.stats.queries, 1u);
  EXPECT_GT(result.stats.product_states, 0u);
  EXPECT_FALSE(result.used_arithmetic);
}

}  // namespace
}  // namespace has
