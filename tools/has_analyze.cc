// Standalone spec analyzer CLI — the --analyze-only fast path CI uses
// to lint every committed spec without building any product VASS.
//
//   has_analyze [--strict] [--verify] [--expect FILE] spec.has
//
// Default mode parses, validates, and runs the static analyzer over the
// spec's system and ALL its properties, printing one diagnostic per
// line (file:line-anchored). Exit codes: 0 clean / expectations met,
// 1 diagnostics under --strict or an --expect mismatch, 2 parse or
// validation failure.
//
//   --strict       fail (exit 1) on any diagnostic — the CLI face of
//                  VerifierOptions::strict_analysis.
//   --expect FILE  compare the rendered diagnostics against FILE
//                  byte-for-byte; CI pins each spec's expected findings
//                  to a committed *.diag file this way.
//   --analyze-only accepted no-op (the default; kept so CI invocations
//                  self-document).
//   --verify       additionally model-check every property of the spec
//                  (NOT analyze-only; builds the VASS).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "core/verifier.h"
#include "model/validate.h"
#include "spec/parser.h"

namespace {

int Run(int argc, char** argv) {
  bool strict = false;
  bool verify = false;
  std::string expect_file;
  std::string spec_file;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--analyze-only") {
      // Default behavior; accepted for explicitness.
    } else if (arg == "--expect" && i + 1 < argc) {
      expect_file = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag " << arg << "\n"
                << "usage: has_analyze [--strict] [--verify] "
                   "[--expect FILE] spec.has\n";
      return 2;
    } else {
      spec_file = arg;
    }
  }
  if (spec_file.empty()) {
    std::cerr << "usage: has_analyze [--strict] [--verify] "
                 "[--expect FILE] spec.has\n";
    return 2;
  }

  std::ifstream in(spec_file);
  if (!in) {
    std::cerr << "cannot read " << spec_file << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  has::StatusOr<has::ParsedSpec> parsed =
      has::ParseSpec(buf.str(), spec_file);
  if (!parsed.ok()) {
    std::cerr << spec_file << ": " << parsed.status().message() << "\n";
    return 2;
  }
  const has::ParsedSpec& spec = *parsed;

  std::vector<std::string> errors =
      has::ValidateSystemAll(spec.system, &spec.locations);
  for (const std::string& e : errors) std::cerr << "error: " << e << "\n";
  if (!errors.empty()) return 2;

  std::vector<std::pair<std::string, const has::HltlProperty*>> props;
  props.reserve(spec.properties.size());
  for (const auto& [name, prop] : spec.properties) {
    props.emplace_back(name, &prop);
  }
  has::AnalysisResult analysis =
      has::AnalyzeSystem(spec.system, props, &spec.locations);
  const std::string rendered =
      has::RenderDiagnostics(analysis.diagnostics, &spec.locations);
  std::cout << rendered;

  if (!expect_file.empty()) {
    std::ifstream exp(expect_file);
    if (!exp) {
      std::cerr << "cannot read expectations " << expect_file << "\n";
      return 2;
    }
    std::ostringstream expected;
    expected << exp.rdbuf();
    if (expected.str() != rendered) {
      std::cerr << "diagnostics differ from " << expect_file
                << "; expected:\n"
                << expected.str();
      return 1;
    }
  } else if (strict && !analysis.diagnostics.empty()) {
    std::cerr << analysis.diagnostics.size()
              << " diagnostic(s) under --strict\n";
    return 1;
  }

  if (verify) {
    for (const auto& [name, prop] : spec.properties) {
      has::VerifyResult r = has::Verify(spec.system, prop);
      std::cout << "property " << name << ": " << has::VerdictName(r.verdict)
                << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
