// Generative spec fuzzer + three-way differential harness CLI.
//
//   has_fuzz [--seed N] [--count N] [--time-budget-s S]
//            [--corpus-dir DIR] [--no-shrink] [--no-write]
//            [--require-witness] [--max-nodes N] [--dump]
//   has_fuzz --replay-dir DIR [--require-witness] [--max-nodes N]
//
// Generate mode (default): derives `count` specs from consecutive
// seeds. Every spec is (1) generated as the print->parse->print
// fixpoint (the generator itself fails otherwise), (2) analyzed, with
// the diagnostics re-derived from a fresh parse and compared — the
// machine check that generated specs carry stable expected
// diagnostics, (3) run through the differential matrix: symbolic
// verdicts across POR on/off x slice on/off x {1,2,4} shards, the
// concrete simulator (CheckRunTree legality), the bounded checker,
// and the exact verdict-algebra relations of fuzz/metamorphic.h.
// Symbolic spreads, CheckRunTree failures and algebra violations are
// hard disagreements; missing and suspect witnesses are soft findings
// (counted, escalatable via --require-witness / --strict-witness) —
// fuzz/differential.h explains why. On a disagreement the spec is
// delta-debugged to a minimal case and written to the corpus
// directory as a .has + .txt (report) + .xfail (pinned kind) triple,
// plus a .diag when the shrunk spec is not analyzer-clean.
//
// Replay mode: re-checks every committed .has under --replay-dir —
// round-trip fixpoint, analyzer diagnostics against the sibling .diag
// (byte-for-byte, or clean when absent), and the full differential. A
// sibling .xfail marks a corpus entry whose disagreement is still
// unfixed: replay then REQUIRES the disagreement to reproduce (the
// pin disappears when the engine bug is fixed and the .xfail removed).
//
// Exit codes: 0 clean, 1 disagreement / replay failure, 2 internal
// error (generator bug, unreadable input).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "common/strings.h"
#include "fuzz/differential.h"
#include "fuzz/generator.h"
#include "fuzz/metamorphic.h"
#include "fuzz/shrink.h"
#include "model/validate.h"
#include "spec/parser.h"
#include "spec/printer.h"

namespace {

using has::DiffKindName;
using has::DiffOptions;
using has::DiffReport;
using has::IsDisagreement;
using has::ParsedSpec;
using has::StrCat;

struct Flags {
  uint64_t seed = 1;
  int count = 50;
  double time_budget_s = 0;  // 0 = no budget
  std::string corpus_dir = "tests/fuzz_corpus";
  std::string replay_dir;
  bool shrink = true;
  bool write = true;
  bool require_witness = false;
  bool strict_witness = false;
  size_t max_nodes = 1 << 12;
  bool dump = false;
};

int Usage() {
  std::cerr
      << "usage: has_fuzz [--seed N] [--count N] [--time-budget-s S]\n"
         "                [--corpus-dir DIR] [--no-shrink] [--no-write]\n"
         "                [--require-witness] [--strict-witness]\n"
         "                [--max-nodes N] [--dump]\n"
         "       has_fuzz --replay-dir DIR [--require-witness] "
         "[--strict-witness] [--max-nodes N]\n";
  return 2;
}

/// Parses + validates; nullopt (with a message) when the spec is not
/// legal — callers treat that as a hard failure, since both generated
/// and committed specs are legal by construction.
std::optional<ParsedSpec> LoadSpec(const std::string& source,
                                   const std::string& name,
                                   std::string* error) {
  has::StatusOr<ParsedSpec> parsed = has::ParseSpec(source, name);
  if (!parsed.ok()) {
    *error = StrCat("parse: ", parsed.status().message());
    return std::nullopt;
  }
  has::Status valid = has::ValidateSystem(parsed->system, &parsed->locations);
  if (!valid.ok()) {
    *error = StrCat("validate: ", valid.message());
    return std::nullopt;
  }
  for (const auto& [prop_name, property] : parsed->properties) {
    has::Status pv = property.Validate(parsed->system);
    if (!pv.ok()) {
      *error = StrCat("property ", prop_name, ": ", pv.message());
      return std::nullopt;
    }
  }
  return std::move(*parsed);
}

std::string RenderAnalysis(const ParsedSpec& spec) {
  std::vector<std::pair<std::string, const has::HltlProperty*>> props;
  props.reserve(spec.properties.size());
  for (const auto& [name, prop] : spec.properties) {
    props.emplace_back(name, &prop);
  }
  has::AnalysisResult analysis =
      has::AnalyzeSystem(spec.system, props, &spec.locations);
  return has::RenderDiagnostics(analysis.diagnostics, &spec.locations);
}

/// The worst (most actionable) outcome across the per-property
/// differentials AND the spec-level metamorphic check. `kind_name` is
/// a DiffKindName or "metamorphic".
struct SpecOutcome {
  std::string kind_name = "agreed";
  int severity = 0;
  std::string property;  ///< the property (or relation) behind the kind
  std::string detail;
  int inconclusive = 0;
  int missing_witness = 0;
  int suspect_witness = 0;
};

int Severity(DiffReport::Kind kind) {
  switch (kind) {
    case DiffReport::Kind::kAgreed:
      return 0;
    case DiffReport::Kind::kInconclusive:
      return 1;
    case DiffReport::Kind::kMissingWitness:
      return 2;
    case DiffReport::Kind::kSuspectWitness:
      return 3;
    case DiffReport::Kind::kSymbolicMismatch:
    case DiffReport::Kind::kConcreteMismatch:
      return 4;
  }
  return 0;
}

constexpr int kHardSeverity = 4;

std::vector<std::pair<std::string, const has::HltlProperty*>> PropPtrs(
    const ParsedSpec& spec) {
  std::vector<std::pair<std::string, const has::HltlProperty*>> props;
  props.reserve(spec.properties.size());
  for (const auto& [name, prop] : spec.properties) {
    props.emplace_back(name, &prop);
  }
  return props;
}

has::AlgebraReport RunAlgebra(const ParsedSpec& spec,
                              const DiffOptions& options) {
  has::VerifierOptions vo;
  vo.max_cov_nodes = options.max_cov_nodes;
  return has::CheckPropertyAlgebra(spec.system, PropPtrs(spec), vo);
}

SpecOutcome CheckSpec(const ParsedSpec& spec, const DiffOptions& options) {
  SpecOutcome outcome;
  for (const auto& [name, property] : spec.properties) {
    DiffReport report =
        has::RunDifferential(spec.system, property, options);
    if (report.kind == DiffReport::Kind::kInconclusive) {
      ++outcome.inconclusive;
    }
    if (report.kind == DiffReport::Kind::kMissingWitness) {
      ++outcome.missing_witness;
    }
    if (report.kind == DiffReport::Kind::kSuspectWitness) {
      ++outcome.suspect_witness;
    }
    if (Severity(report.kind) > outcome.severity) {
      outcome.severity = Severity(report.kind);
      outcome.kind_name = DiffKindName(report.kind);
      outcome.property = name;
      outcome.detail = report.detail;
    }
  }
  // Exact verdict-algebra relations (fuzz/metamorphic.h): a violation
  // outranks everything — it is a genuine engine bug with no run-set
  // caveat.
  has::AlgebraReport algebra = RunAlgebra(spec, options);
  if (!algebra.ok()) {
    const has::AlgebraFinding& f = algebra.findings.front();
    outcome.severity = kHardSeverity;
    outcome.kind_name = "metamorphic";
    outcome.property = f.relation;
    outcome.detail = f.detail;
  }
  return outcome;
}

/// Shrink predicate: the same kind of finding reproduces on the
/// candidate.
bool OutcomeReproduces(const ParsedSpec& spec, const DiffOptions& options,
                       const std::string& kind_name) {
  if (kind_name == "metamorphic") return !RunAlgebra(spec, options).ok();
  for (const auto& [name, property] : spec.properties) {
    DiffReport report =
        has::RunDifferential(spec.system, property, options);
    if (DiffKindName(report.kind) == kind_name) return true;
  }
  return false;
}

void WriteFile(const std::filesystem::path& path,
               const std::string& contents) {
  std::ofstream out(path);
  out << contents;
}

/// Shrinks a disagreeing spec and commits it to the corpus. Returns
/// the minimal source (the input source when shrinking is disabled or
/// fails).
std::string ShrinkAndCommit(const std::string& source, uint64_t seed,
                            const SpecOutcome& outcome, const Flags& flags,
                            const DiffOptions& diff) {
  std::string minimal = source;
  if (flags.shrink) {
    has::ShrinkStats stats;
    has::StatusOr<std::string> shrunk = has::ShrinkSpec(
        source,
        [&diff, &outcome](const ParsedSpec& spec) {
          return OutcomeReproduces(spec, diff, outcome.kind_name);
        },
        has::ShrinkOptions{}, &stats);
    if (shrunk.ok()) {
      minimal = *shrunk;
      std::cerr << "  shrink: " << stats.accepted << "/" << stats.tried
                << " steps accepted, " << source.size() << " -> "
                << minimal.size() << " bytes\n";
    } else {
      std::cerr << "  shrink failed: " << shrunk.status().message() << "\n";
    }
  }
  if (!flags.write) return minimal;

  std::error_code ec;
  std::filesystem::create_directories(flags.corpus_dir, ec);
  std::string stem = StrCat("seed", seed, "_", outcome.kind_name);
  std::filesystem::path base =
      std::filesystem::path(flags.corpus_dir) / stem;
  WriteFile(base.replace_extension(".has"), minimal);
  std::string note = StrCat("kind: ", outcome.kind_name, "\nseed: ", seed,
                            "\nproperty: ", outcome.property, "\n\n",
                            outcome.detail, "\n--- original source ---\n",
                            source);
  WriteFile(base.replace_extension(".txt"), note);
  // Unfixed disagreements replay as expected-failures until the engine
  // bug is resolved and the .xfail removed alongside the fix. The file
  // pins the exact kind replay must reproduce.
  WriteFile(base.replace_extension(".xfail"),
            StrCat(outcome.kind_name, "\n"));
  std::string err;
  std::optional<ParsedSpec> parsed = LoadSpec(minimal, stem, &err);
  if (parsed.has_value()) {
    std::string diags = RenderAnalysis(*parsed);
    if (!diags.empty()) WriteFile(base.replace_extension(".diag"), diags);
  }
  std::cerr << "  committed " << base.replace_extension(".has").string()
            << "\n";
  return minimal;
}

int RunGenerate(const Flags& flags) {
  DiffOptions diff;
  diff.require_witness = flags.require_witness;
  diff.strict_witness = flags.strict_witness;
  diff.max_cov_nodes = flags.max_nodes;

  auto start = std::chrono::steady_clock::now();
  auto elapsed_s = [&start]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  int checked = 0, agreed = 0, inconclusive = 0, missing_witness = 0;
  int suspect_witness = 0, disagreements = 0;
  for (int i = 0; i < flags.count; ++i) {
    if (flags.time_budget_s > 0 && elapsed_s() > flags.time_budget_s) {
      std::cerr << "time budget exhausted after " << checked << " specs\n";
      break;
    }
    uint64_t seed = flags.seed + static_cast<uint64_t>(i);
    has::StatusOr<has::GeneratedSpec> generated = has::GenerateSpec(seed);
    if (!generated.ok()) {
      std::cerr << "generator error: " << generated.status().message()
                << "\n";
      return 2;
    }
    if (flags.dump) {
      std::cout << "# seed " << seed << "\n" << generated->source << "\n";
      continue;
    }

    std::string err;
    std::optional<ParsedSpec> spec =
        LoadSpec(generated->source, StrCat("<seed ", seed, ">"), &err);
    if (!spec.has_value()) {
      std::cerr << "seed " << seed << ": canonical source rejected: " << err
                << "\n";
      return 2;
    }
    // Analyzer stability: diagnostics re-derived from an independent
    // parse of the same source must render identically (the
    // machine-checked "expected diagnostics" of generated specs).
    std::string diags_once = RenderAnalysis(*spec);
    std::optional<ParsedSpec> again =
        LoadSpec(generated->source, StrCat("<seed ", seed, ">"), &err);
    if (!again.has_value() || RenderAnalysis(*again) != diags_once) {
      std::cerr << "seed " << seed
                << ": analyzer diagnostics are not reparse-stable\n";
      return 2;
    }

    SpecOutcome outcome = CheckSpec(*spec, diff);
    ++checked;
    inconclusive += outcome.inconclusive;
    missing_witness += outcome.missing_witness;
    suspect_witness += outcome.suspect_witness;
    bool disagreement =
        outcome.severity >= kHardSeverity ||
        (outcome.kind_name == "missing-witness" && flags.require_witness) ||
        (outcome.kind_name == "suspect-witness" && flags.strict_witness);
    if (disagreement) {
      ++disagreements;
      std::cerr << "seed " << seed << ": " << outcome.kind_name << " on "
                << outcome.property << "\n"
                << outcome.detail << "\n";
      ShrinkAndCommit(generated->source, seed, outcome, flags, diff);
    } else if (outcome.severity == 0) {
      ++agreed;
    }
  }

  // Dump mode writes spec sources to stdout for piping; the summary
  // would corrupt them (and is all zeros anyway — nothing is checked).
  if (flags.dump) return 0;
  std::cout << "checked=" << checked << " agreed=" << agreed
            << " inconclusive-props=" << inconclusive
            << " missing-witness-props=" << missing_witness
            << " suspect-witness-props=" << suspect_witness
            << " disagreements=" << disagreements << "\n";
  return disagreements > 0 ? 1 : 0;
}

int RunReplay(const Flags& flags) {
  DiffOptions diff;
  diff.require_witness = flags.require_witness;
  diff.strict_witness = flags.strict_witness;
  diff.max_cov_nodes = flags.max_nodes;

  std::vector<std::filesystem::path> specs;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(flags.replay_dir, ec)) {
    if (entry.path().extension() == ".has") specs.push_back(entry.path());
  }
  if (ec) {
    std::cerr << "cannot read " << flags.replay_dir << ": " << ec.message()
              << "\n";
    return 2;
  }
  std::sort(specs.begin(), specs.end());

  int failures = 0;
  for (const std::filesystem::path& path : specs) {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string source = buf.str();

    std::string err;
    std::optional<ParsedSpec> spec = LoadSpec(source, path.string(), &err);
    if (!spec.has_value()) {
      std::cerr << path.string() << ": " << err << "\n";
      ++failures;
      continue;
    }
    // Committed corpus entries are canonical: print == file contents.
    std::string printed =
        has::PrintSpecSource(spec->system, spec->properties);
    if (printed != source) {
      std::cerr << path.string()
                << ": not a print fixpoint (re-canonicalize with "
                   "has_fuzz)\n";
      ++failures;
      continue;
    }
    std::filesystem::path diag_path = path;
    diag_path.replace_extension(".diag");
    std::string expected_diags;
    if (std::filesystem::exists(diag_path)) {
      std::ifstream d(diag_path);
      std::ostringstream dbuf;
      dbuf << d.rdbuf();
      expected_diags = dbuf.str();
    }
    std::string diags = RenderAnalysis(*spec);
    if (diags != expected_diags) {
      std::cerr << path.string() << ": analyzer diagnostics drifted\n"
                << "--- expected ---\n"
                << expected_diags << "--- got ---\n"
                << diags;
      ++failures;
      continue;
    }

    SpecOutcome outcome = CheckSpec(*spec, diff);
    std::filesystem::path xfail_path = path;
    xfail_path.replace_extension(".xfail");
    if (std::filesystem::exists(xfail_path)) {
      // The .xfail pins the exact finding kind the case must still
      // reproduce (deterministic: fixed seeds throughout).
      std::ifstream x(xfail_path);
      std::string expected_kind;
      std::getline(x, expected_kind);
      if (outcome.kind_name != expected_kind) {
        std::cerr << path.string() << ": expected " << expected_kind
                  << " but got " << outcome.kind_name
                  << " — if the bug is fixed, delete the .xfail and keep "
                     "the spec as a regression case\n";
        ++failures;
      } else {
        std::cout << path.filename().string() << ": ok (still "
                  << outcome.kind_name << ", pinned by .xfail)\n";
      }
    } else if (outcome.severity >= kHardSeverity) {
      std::cerr << path.string() << ": " << outcome.kind_name << " on "
                << outcome.property << "\n"
                << outcome.detail << "\n";
      ++failures;
    } else {
      std::cout << path.filename().string() << ": ok ("
                << outcome.kind_name << ")\n";
    }
  }
  std::cout << "replayed " << specs.size() << " spec(s), " << failures
            << " failure(s)\n";
  return failures > 0 ? 1 : 0;
}

int Run(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--seed") {
      auto v = next();
      if (!v) return Usage();
      flags.seed = std::stoull(*v);
    } else if (arg == "--count") {
      auto v = next();
      if (!v) return Usage();
      flags.count = std::stoi(*v);
    } else if (arg == "--time-budget-s") {
      auto v = next();
      if (!v) return Usage();
      flags.time_budget_s = std::stod(*v);
    } else if (arg == "--corpus-dir") {
      auto v = next();
      if (!v) return Usage();
      flags.corpus_dir = *v;
    } else if (arg == "--replay-dir") {
      auto v = next();
      if (!v) return Usage();
      flags.replay_dir = *v;
    } else if (arg == "--max-nodes") {
      auto v = next();
      if (!v) return Usage();
      flags.max_nodes = std::stoull(*v);
    } else if (arg == "--strict-witness") {
      flags.strict_witness = true;
    } else if (arg == "--no-shrink") {
      flags.shrink = false;
    } else if (arg == "--no-write") {
      flags.write = false;
    } else if (arg == "--require-witness") {
      flags.require_witness = true;
    } else if (arg == "--dump") {
      flags.dump = true;
    } else {
      std::cerr << "unknown argument " << arg << "\n";
      return Usage();
    }
  }
  return flags.replay_dir.empty() ? RunGenerate(flags) : RunReplay(flags);
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
